// Online service mode (src/svc) and its incremental rescheduler
// (harmony/incremental): admission-queue policies, bounded join/leave repair
// with machine conservation, the drift trigger, incremental-vs-full
// equivalence within the documented bound, bit-identical seeded service runs,
// and corruption detection by the deep validators.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/rng.h"
#include "exp/workload.h"
#include "harmony/incremental.h"
#include "harmony/scheduler.h"
#include "harmony/validate.h"
#include "svc/admission.h"
#include "svc/service.h"

namespace harmony {
namespace {

// ---------------------------------------------------------------------------
// AdmissionQueue

svc::PendingJob pending(core::JobId id, double expected_jct, std::uint64_t seq) {
  svc::PendingJob p;
  p.job.id = id;
  p.job.profile.cpu_work = 100.0;
  p.job.profile.t_net = 1.0;
  p.expected_jct = expected_jct;
  p.seq = seq;
  return p;
}

TEST(AdmissionQueue, FifoPollsInArrivalOrder) {
  svc::AdmissionQueue q(svc::AdmissionPolicy::kFifo, 8);
  ASSERT_TRUE(q.offer(pending(10, 50.0, 0)));
  ASSERT_TRUE(q.offer(pending(11, 5.0, 1)));
  ASSERT_TRUE(q.offer(pending(12, 500.0, 2)));
  EXPECT_EQ(q.poll()->job.id, 10u);
  EXPECT_EQ(q.poll()->job.id, 11u);
  EXPECT_EQ(q.poll()->job.id, 12u);
  EXPECT_FALSE(q.poll().has_value());
}

TEST(AdmissionQueue, ShortestJctPollsBySmallestEstimate) {
  svc::AdmissionQueue q(svc::AdmissionPolicy::kShortestJct, 8);
  ASSERT_TRUE(q.offer(pending(10, 50.0, 0)));
  ASSERT_TRUE(q.offer(pending(11, 5.0, 1)));
  ASSERT_TRUE(q.offer(pending(12, 500.0, 2)));
  ASSERT_TRUE(q.offer(pending(13, 5.0, 3)));  // tie with 11; seq breaks it
  EXPECT_EQ(q.poll()->job.id, 11u);
  EXPECT_EQ(q.poll()->job.id, 13u);
  EXPECT_EQ(q.poll()->job.id, 10u);
  EXPECT_EQ(q.poll()->job.id, 12u);
}

TEST(AdmissionQueue, CapacityShedsAndCounts) {
  svc::AdmissionQueue q(svc::AdmissionPolicy::kFifo, 2);
  EXPECT_TRUE(q.offer(pending(1, 1.0, 0)));
  EXPECT_TRUE(q.offer(pending(2, 1.0, 1)));
  EXPECT_FALSE(q.offer(pending(3, 1.0, 2)));  // shed
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
}

TEST(AdmissionQueue, RestoreReturnsToHeadWithoutAccounting) {
  svc::AdmissionQueue q(svc::AdmissionPolicy::kFifo, 4);
  ASSERT_TRUE(q.offer(pending(1, 1.0, 0)));
  ASSERT_TRUE(q.offer(pending(2, 1.0, 1)));
  auto head = q.poll();
  ASSERT_TRUE(head.has_value());
  q.restore(std::move(*head));
  EXPECT_EQ(q.offered(), 2u);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_EQ(q.poll()->job.id, 1u);  // back at the head, not the tail
}

TEST(AdmissionPolicy, ParseAndName) {
  EXPECT_EQ(svc::parse_admission_policy("fifo"), svc::AdmissionPolicy::kFifo);
  EXPECT_EQ(svc::parse_admission_policy("sjf"), svc::AdmissionPolicy::kShortestJct);
  EXPECT_EQ(svc::parse_admission_policy("shortest-jct"),
            svc::AdmissionPolicy::kShortestJct);
  EXPECT_FALSE(svc::parse_admission_policy("lifo").has_value());
  EXPECT_STREQ(svc::to_string(svc::AdmissionPolicy::kFifo), "fifo");
  EXPECT_STREQ(svc::to_string(svc::AdmissionPolicy::kShortestJct), "sjf");
}

// ---------------------------------------------------------------------------
// IncrementalScheduler

core::SchedJob job(core::JobId id, double cpu_work, double t_net) {
  core::SchedJob j;
  j.id = id;
  j.profile.cpu_work = cpu_work;
  j.profile.t_net = t_net;
  return j;
}

core::IncrementalScheduler::Params inc_params() {
  core::IncrementalScheduler::Params p;
  p.drift_threshold = 0.10;
  return p;
}

void expect_valid(const core::IncrementalScheduler& inc) {
  check::Validation v("incremental");
  core::validate_incremental_state(inc, v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
}

TEST(IncrementalScheduler, JoinPlacesAndConservesMachines) {
  core::IncrementalScheduler inc(inc_params(), 100);
  std::size_t placed = 0;
  for (core::JobId id = 0; id < 20; ++id) {
    const auto r = inc.join(job(id, 200.0 + 10.0 * id, 8.0));
    if (r.has_value()) {
      ++placed;
      EXPECT_GT(r->group_t_itr, 0.0);
    }
  }
  EXPECT_GT(placed, 0u);
  EXPECT_EQ(inc.running_jobs(), placed);
  std::size_t allocated = 0;
  for (const auto& g : inc.groups())
    if (g.live) allocated += g.machines;
  EXPECT_EQ(allocated + inc.free_machines(), inc.total_machines());
  expect_valid(inc);
}

TEST(IncrementalScheduler, LeaveDissolvesEmptyGroupAndFreesMachines) {
  core::IncrementalScheduler inc(inc_params(), 50);
  ASSERT_TRUE(inc.join(job(1, 300.0, 10.0)).has_value());
  EXPECT_TRUE(inc.contains(1));
  EXPECT_LT(inc.free_machines(), 50u);
  EXPECT_TRUE(inc.leave(1));
  EXPECT_FALSE(inc.contains(1));
  EXPECT_EQ(inc.free_machines(), 50u);
  EXPECT_EQ(inc.live_group_count(), 0u);
  EXPECT_FALSE(inc.leave(1));  // not placed anymore
  expect_valid(inc);
}

TEST(IncrementalScheduler, JoinRejectsDuplicateAndPoolIsIdSorted) {
  core::IncrementalScheduler inc(inc_params(), 40);
  ASSERT_TRUE(inc.join(job(5, 200.0, 8.0)).has_value());
  ASSERT_TRUE(inc.join(job(2, 260.0, 9.0)).has_value());
  EXPECT_THROW(inc.join(job(5, 200.0, 8.0)), check::CheckError);
  const auto pool = inc.pool();
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0].id, 2u);
  EXPECT_EQ(pool[1].id, 5u);
}

TEST(IncrementalScheduler, QualityGateDeclinesScoreCrashingJoin) {
  // Fill a small cluster with well-matched jobs, then offer one whose solo
  // group would crater the modelled score: the gate queues it (nullopt)
  // rather than letting admission ratchet past what full Algorithm 1 would
  // co-schedule. force=true bypasses the gate.
  auto params = inc_params();
  core::IncrementalScheduler inc(params, 24);
  for (core::JobId id = 0; id < 12; ++id)
    ASSERT_TRUE(inc.join(job(id, 160.0, 8.0)).has_value());
  const double before = inc.current_score();
  core::JobId extra = 100;
  core::SchedJob awkward = job(extra, 4000.0, 0.05);  // wants ~all machines
  std::optional<core::IncrementalScheduler::JoinResult> r;
  while ((r = inc.join(awkward)).has_value()) {
    // Keep stuffing copies until the gate trips; bounded by the member caps.
    awkward = job(++extra, 4000.0, 0.05);
    ASSERT_LT(extra, 200u);
  }
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(inc.current_score(),
            before * (1.0 - params.drift_threshold) - 1e-9);
  const auto forced = inc.join(awkward, /*force=*/true);
  EXPECT_TRUE(forced.has_value());
  expect_valid(inc);
}

TEST(IncrementalScheduler, DriftRisesOnDecayAndResetsOnAdopt) {
  auto params = inc_params();
  core::IncrementalScheduler inc(params, 80);
  for (core::JobId id = 0; id < 16; ++id) inc.join(job(id, 220.0, 10.0), true);
  EXPECT_GE(inc.drift(), 0.0);

  // Forced churn decays the grouping; drift must eventually cross the
  // threshold (the escalation trigger the service relies on).
  core::JobId next = 100;
  for (int round = 0; round < 200 && !inc.needs_full_reschedule(); ++round) {
    for (core::JobId id = 0; id < 100; ++id)
      if (inc.contains(id)) {
        inc.leave(id);
        break;
      }
    inc.join(job(next++, 1500.0, 2.0), true);
  }
  EXPECT_TRUE(inc.needs_full_reschedule());

  // A full Algorithm-1 repack adopted back in resets the baseline.
  core::Scheduler full;
  const auto pool = inc.pool();
  inc.adopt(full.repack(pool, inc.total_machines()), pool);
  EXPECT_LT(inc.drift(), params.drift_threshold);
  EXPECT_EQ(inc.running_jobs(), pool.size());
  expect_valid(inc);
}

TEST(IncrementalScheduler, EquivalenceWithFullRepackWithinSlack) {
  // Golden equivalence bound: after a stream of bounded-work joins/leaves,
  // the incremental grouping scores within the documented slack of a fresh
  // full-algorithm repack of the same jobs (see validate_incremental_vs_full;
  // the service pairs drift_threshold 0.10 with slack 0.35).
  core::IncrementalScheduler inc(inc_params(), 120);
  core::Scheduler full;
  Rng rng(17);
  core::JobId next = 0;
  for (int step = 0; step < 400; ++step) {
    if (inc.needs_full_reschedule()) {
      // What the service's escalation does: full repack, adopt, baseline.
      const auto pool = inc.pool();
      inc.adopt(full.repack(pool, inc.total_machines()), pool);
    }
    if (rng.bernoulli(0.6) || inc.running_jobs() == 0) {
      inc.join(job(next++, rng.uniform(150.0, 450.0), rng.uniform(4.0, 12.0)));
    } else {
      const auto pool = inc.pool();
      inc.leave(
          pool[static_cast<std::size_t>(
                   rng.uniform(0.0, static_cast<double>(pool.size()))) %
               pool.size()]
              .id);
    }
  }
  ASSERT_GT(inc.running_jobs(), 0u);
  check::Validation v("equivalence");
  core::validate_incremental_vs_full(inc, full, 0.35, v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
}

TEST(IncrementalScheduler, CorruptionInjectionIsDetected) {
  using Corruption = core::IncrementalScheduler::Corruption;
  for (const Corruption kind :
       {Corruption::kLostMachine, Corruption::kDuplicateJob,
        Corruption::kSkewedAggregate}) {
    core::IncrementalScheduler inc(inc_params(), 60);
    for (core::JobId id = 0; id < 8; ++id) inc.join(job(id, 200.0, 8.0), true);
    expect_valid(inc);
    inc.corrupt_for_test(kind);
    check::Validation v("incremental");
    core::validate_incremental_state(inc, v);
    EXPECT_FALSE(v.ok()) << "corruption kind " << static_cast<int>(kind)
                         << " went undetected";
  }
}

// ---------------------------------------------------------------------------
// Service

svc::ServiceConfig small_service_config() {
  svc::ServiceConfig config;
  config.machines = 120;
  config.duration_sec = 4000.0;
  config.arrival_kind = "poisson";
  config.mean_interarrival_sec = 20.0;
  config.queue_capacity = 64;
  config.seed = 9;
  return config;
}

TEST(Service, SeededRunsAreBitIdentical) {
  const auto catalog = exp::make_catalog();
  svc::Service a(small_service_config(), catalog);
  svc::Service b(small_service_config(), catalog);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.report(), sb.report());
  EXPECT_EQ(sa.arrivals, sb.arrivals);
  EXPECT_EQ(sa.scheduling_events, sb.scheduling_events);
  EXPECT_EQ(sa.jct_p99, sb.jct_p99);
}

TEST(Service, ValidatorsOnDoNotPerturbTheRun) {
  const auto catalog = exp::make_catalog();
  auto validated_config = small_service_config();
  validated_config.validate_every_events = 32;
  svc::Service plain(small_service_config(), catalog);
  svc::Service validated(validated_config, catalog);
  const auto sp = plain.run();
  const auto sv = validated.run();
  EXPECT_EQ(sp.report(), sv.report());  // byte-identical deterministic surface
  EXPECT_GT(sv.validations_run, 0u);
}

TEST(Service, AccountingIsConsistent) {
  svc::Service service(small_service_config(), exp::make_catalog());
  const auto s = service.run();
  EXPECT_GT(s.arrivals, 0u);
  EXPECT_EQ(s.arrivals, s.admitted + s.rejected);
  EXPECT_EQ(s.admitted, s.completed + s.running_at_end + s.queued_at_end);
  EXPECT_EQ(s.scheduling_events, s.incremental_joins + s.incremental_leaves +
                                     s.rejected + s.full_reschedules);
  EXPECT_GT(s.completed, 0u);
  EXPECT_GT(s.jct_p99, 0.0);
  EXPECT_GE(s.jct_p99, s.jct_p50);
}

TEST(Service, RejectsClosedLoopBatchArrivals) {
  auto config = small_service_config();
  config.arrival_kind = "batch";
  EXPECT_THROW(svc::Service(config, exp::make_catalog()), check::CheckError);
}

TEST(Service, StateValidatesCleanAfterRunAndCorruptionIsDetected) {
  svc::Service service(small_service_config(), exp::make_catalog());
  service.run();
  EXPECT_TRUE(service.validate_state().ok());
  service.corrupt_for_test(core::IncrementalScheduler::Corruption::kLostMachine);
  EXPECT_FALSE(service.validate_state().ok());
}

}  // namespace
}  // namespace harmony
