// Live telemetry stack: TimeSeriesEngine windowing/filtering/JSONL, the
// Prometheus exposition, SLO parsing and the burn-rate alert state machine,
// service-mode end-to-end telemetry determinism, and the flight recorder's
// ring/dump behavior (including dump-on-corruption through check::fail).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "exp/workload.h"
#include "harmony/incremental.h"
#include "json_mini.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "svc/service.h"

namespace harmony {
namespace {

using obs::AlertState;
using obs::MetricsRegistry;
using obs::SloKind;
using obs::SloMonitor;
using obs::SloSpec;
using obs::TelemetryWindow;
using obs::TimeSeriesConfig;
using obs::TimeSeriesEngine;
using testing::parse_json;

// ---------------------------------------------------------------------------
// TimeSeriesEngine

// Registry metrics live for the process; tests here use a "tst." prefix so
// the include-filter isolates them from everything else in this binary.
TimeSeriesConfig tst_config(double interval = 60.0, std::size_t capacity = 512) {
  TimeSeriesConfig config;
  config.interval_sec = interval;
  config.capacity = capacity;
  config.include_prefixes = {"tst."};
  config.exclude = {"tst.wall_us"};
  return config;
}

TEST(TimeSeriesEngine, WindowsDeltaRateAndFilter) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& events = reg.counter("tst.events");
  auto& wall = reg.counter("tst.wall_us");       // excluded by exact name
  auto& foreign = reg.counter("other.events");   // excluded by prefix
  auto& depth = reg.gauge("tst.depth");
  auto& lat = reg.histogram("tst.latency", 0.0, 100.0, 10);

  TimeSeriesEngine engine(tst_config(), reg);
  events.add(30);
  wall.add(999);
  foreign.add(7);
  depth.set(4.0);
  lat.observe(10.0);
  lat.observe(95.0);

  const TelemetryWindow& w0 = engine.sample(60.0);
  EXPECT_EQ(w0.index, 0u);
  EXPECT_DOUBLE_EQ(w0.start_sec, 0.0);
  EXPECT_DOUBLE_EQ(w0.end_sec, 60.0);
  EXPECT_EQ(w0.counter_deltas.at("tst.events"), 30u);
  EXPECT_DOUBLE_EQ(w0.rate("tst.events"), 0.5);  // 30 over a 60 s window
  EXPECT_EQ(w0.counter_deltas.count("tst.wall_us"), 0u);
  EXPECT_EQ(w0.counter_deltas.count("other.events"), 0u);
  EXPECT_DOUBLE_EQ(w0.gauges.at("tst.depth"), 4.0);
  EXPECT_EQ(w0.histograms.at("tst.latency").count, 2u);

  // Second window sees only what happened since the first sample.
  events.add(6);
  const TelemetryWindow& w1 = engine.sample(120.0);
  EXPECT_EQ(w1.index, 1u);
  EXPECT_DOUBLE_EQ(w1.start_sec, 60.0);
  EXPECT_EQ(w1.counter_deltas.at("tst.events"), 6u);
  EXPECT_EQ(w1.histograms.at("tst.latency").count, 0u);
}

TEST(TimeSeriesEngine, BaselineAtConstructionHidesPriorAccumulation) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& ctr = reg.counter("tst.preexisting");
  ctr.add(1000);  // accumulated before the engine existed
  TimeSeriesEngine engine(tst_config(), reg);
  ctr.add(5);
  EXPECT_EQ(engine.sample(60.0).counter_deltas.at("tst.preexisting"), 5u);
}

TEST(TimeSeriesEngine, RingEvictsOldestButIndicesStayMonotone) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("tst.tick");
  TimeSeriesEngine engine(tst_config(60.0, /*capacity=*/4), reg);
  for (int i = 1; i <= 6; ++i) engine.sample(60.0 * i);
  EXPECT_EQ(engine.windows_sampled(), 6u);
  ASSERT_EQ(engine.windows().size(), 4u);
  EXPECT_EQ(engine.windows().front().index, 2u);
  EXPECT_EQ(engine.windows().back().index, 5u);
}

TEST(TimeSeriesEngine, JsonlIsByteDeterministicAndParses) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("tst.events").add(12);
  reg.gauge("tst.depth").set(2.5);
  reg.histogram("tst.latency", 0.0, 100.0, 10).observe(42.0);
  TimeSeriesConfig config = tst_config();
  config.exclude.clear();
  // Two engines over the same registry state produce identical lines.
  TimeSeriesEngine a(config, reg);
  TimeSeriesEngine b(config, reg);
  reg.counter("tst.events").add(3);
  const std::string la = TimeSeriesEngine::to_jsonl(a.sample(60.0), "");
  const std::string lb = TimeSeriesEngine::to_jsonl(b.sample(60.0), "");
  EXPECT_EQ(la, lb);
  ASSERT_FALSE(la.empty());
  // One line per window; the newline separator is the sink's job.
  EXPECT_EQ(la.back(), '}');
  EXPECT_EQ(la.rfind("{\"schema\":\"harmony-telemetry-v1\",\"window\":0,", 0), 0u);

  const auto doc = parse_json(la);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("tst.events").number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("rates").at("tst.events").number(), 3.0 / 60.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("tst.depth").number(), 2.5);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("tst.latency").at("count").number(), 0.0);

  // The extra fragment splices before the closing brace and stays valid JSON.
  const std::string spliced = TimeSeriesEngine::to_jsonl(
      a.windows().back(), ",\"slos\":[{\"name\":\"x\",\"state\":\"inactive\","
                          "\"value\":0,\"breached\":0}]");
  const auto doc2 = parse_json(spliced);
  EXPECT_EQ(doc2.at("slos").array().size(), 1u);
}

TEST(TimeSeriesEngine, PrometheusExpositionShape) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("tst.events").add(12);
  reg.gauge("tst.queue-depth").set(3.0);
  auto& lat = reg.histogram("tst.latency", 0.0, 100.0, 4);
  lat.observe(10.0);
  lat.observe(80.0);
  TimeSeriesEngine engine(tst_config(), reg);
  const std::string text = obs::prometheus_text(engine.filtered_snapshot());

  EXPECT_NE(text.find("# TYPE harmony_tst_events_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("harmony_tst_events_total 12\n"), std::string::npos);
  // '-' sanitized to '_'; gauges keep their name unsuffixed.
  EXPECT_NE(text.find("# TYPE harmony_tst_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE harmony_tst_latency histogram\n"), std::string::npos);
  EXPECT_NE(text.find("harmony_tst_latency_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("harmony_tst_latency_count 2\n"), std::string::npos);
  // The wall-fed series is filtered out of the exposition too.
  EXPECT_EQ(text.find("tst_wall_us"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO parsing

TEST(ParseSlo, RecognizedNamesAndBounds) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(obs::parse_slo("queue-delay-p99=120", spec, error)) << error;
  EXPECT_EQ(spec.kind, SloKind::kQueueDelayP99);
  EXPECT_DOUBLE_EQ(spec.threshold, 120.0);
  EXPECT_FALSE(spec.lower_bound);

  ASSERT_TRUE(obs::parse_slo("rejection-rate=0.05", spec, error)) << error;
  EXPECT_EQ(spec.kind, SloKind::kRejectionRate);

  ASSERT_TRUE(obs::parse_slo("drift-escalation-rate=4", spec, error)) << error;
  EXPECT_EQ(spec.kind, SloKind::kDriftEscalationRate);

  ASSERT_TRUE(obs::parse_slo("sched-throughput-floor=0.25", spec, error)) << error;
  EXPECT_EQ(spec.kind, SloKind::kSchedThroughputFloor);
  EXPECT_TRUE(spec.lower_bound);  // floor: breach when value < threshold
}

TEST(ParseSlo, RejectsMalformedSpecs) {
  SloSpec spec;
  std::string error;
  EXPECT_FALSE(obs::parse_slo("not-an-objective=1", spec, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_slo("queue-delay-p99", spec, error));     // no '='
  EXPECT_FALSE(obs::parse_slo("queue-delay-p99=", spec, error));    // no number
  EXPECT_FALSE(obs::parse_slo("queue-delay-p99=12x", spec, error)); // trailing junk
}

// ---------------------------------------------------------------------------
// SLO alert state machine (synthetic window stream)

TelemetryWindow synthetic_window(std::uint64_t index, double queue_delay_p99,
                                 std::uint64_t sched_events = 100) {
  TelemetryWindow w;
  w.index = index;
  w.start_sec = 60.0 * static_cast<double>(index);
  w.end_sec = w.start_sec + 60.0;
  w.histograms["svc.queue_delay_sec"] = {queue_delay_p99 > 0.0 ? 1u : 0u,
                                         queue_delay_p99, queue_delay_p99,
                                         queue_delay_p99};
  w.counter_deltas["svc.scheduling_events"] = sched_events;
  return w;
}

TEST(SloMonitor, DefaultBurnRateNeedsFastAndSlowWindows) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(obs::parse_slo("queue-delay-p99=100", spec, error));
  SloMonitor monitor(spec);

  // Every window breaches. fast (3/3) saturates at window 3, but the slow
  // fraction is over the *nominal* 12 windows, so burning starts at 6/12.
  for (std::uint64_t i = 0; i < 5; ++i) {
    monitor.evaluate(synthetic_window(i, 250.0));
    EXPECT_EQ(monitor.state(), AlertState::kInactive) << "window " << i;
  }
  ASSERT_TRUE(monitor.evaluate(synthetic_window(5, 250.0)));
  EXPECT_EQ(monitor.state(), AlertState::kPending);
  EXPECT_EQ(monitor.pages(), 0u);
  ASSERT_TRUE(monitor.evaluate(synthetic_window(6, 250.0)));  // 2nd confirmation
  EXPECT_EQ(monitor.state(), AlertState::kFiring);
  EXPECT_EQ(monitor.pages(), 1u);
  EXPECT_TRUE(monitor.last_breached());
  EXPECT_DOUBLE_EQ(monitor.last_value(), 250.0);

  // One healthy window breaks the fast burn: firing -> resolved.
  ASSERT_TRUE(monitor.evaluate(synthetic_window(7, 10.0)));
  EXPECT_EQ(monitor.state(), AlertState::kResolved);
  EXPECT_EQ(monitor.pages(), 1u);

  ASSERT_EQ(monitor.transitions().size(), 3u);
  EXPECT_EQ(monitor.transitions()[0].to, AlertState::kPending);
  EXPECT_EQ(monitor.transitions()[0].window, 5u);
  EXPECT_EQ(monitor.transitions()[1].to, AlertState::kFiring);
  EXPECT_EQ(monitor.transitions()[2].to, AlertState::kResolved);
  EXPECT_DOUBLE_EQ(monitor.transitions()[2].time_sec, 8 * 60.0);
}

TEST(SloMonitor, LowerBoundFloorFiresOnStarvation) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(obs::parse_slo("sched-throughput-floor=1.0", spec, error));
  spec.fast_windows = 1;
  spec.slow_windows = 2;
  spec.pending_windows = 1;  // page on the first burning window
  SloMonitor monitor(spec);

  // 12 events / 60 s = 0.2 events/s, under the 1.0 floor.
  ASSERT_TRUE(monitor.evaluate(synthetic_window(0, 0.0, /*sched_events=*/12)));
  EXPECT_EQ(monitor.state(), AlertState::kFiring);
  EXPECT_EQ(monitor.pages(), 1u);
  // Healthy throughput resolves; a second starved window pages again.
  ASSERT_TRUE(monitor.evaluate(synthetic_window(1, 0.0, 600)));
  EXPECT_EQ(monitor.state(), AlertState::kResolved);
  ASSERT_TRUE(monitor.evaluate(synthetic_window(2, 0.0, 0)));
  EXPECT_EQ(monitor.state(), AlertState::kFiring);
  EXPECT_EQ(monitor.pages(), 2u);
}

TEST(SloMonitor, PendingFallsBackWhenBurnDoesNotConfirm) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(obs::parse_slo("queue-delay-p99=100", spec, error));
  spec.fast_windows = 1;
  spec.slow_windows = 1;
  spec.slow_burn = 1.0;
  spec.pending_windows = 2;
  SloMonitor monitor(spec);

  ASSERT_TRUE(monitor.evaluate(synthetic_window(0, 500.0)));
  EXPECT_EQ(monitor.state(), AlertState::kPending);
  // The next window is healthy: never fired, so fall back to inactive.
  ASSERT_TRUE(monitor.evaluate(synthetic_window(1, 5.0)));
  EXPECT_EQ(monitor.state(), AlertState::kInactive);
  EXPECT_EQ(monitor.pages(), 0u);
  const std::string json = monitor.state_json();
  EXPECT_NE(json.find("\"state\":\"inactive\""), std::string::npos);
  EXPECT_NE(json.find("\"breached\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service end-to-end telemetry

svc::ServiceConfig telemetry_service_config() {
  svc::ServiceConfig config;
  config.machines = 120;
  config.duration_sec = 4000.0;
  config.mean_interarrival_sec = 20.0;
  config.queue_capacity = 64;
  config.seed = 9;
  config.telemetry_interval_sec = 300.0;
  return config;
}

TEST(ServiceTelemetry, JsonlIsByteIdenticalAcrossRunsAndValidators) {
  const auto catalog = exp::make_catalog();
  // Byte-identity holds for runs whose engines baseline against the same
  // registry state; reset puts each run in the CLI's one-service-per-process
  // position. (Without it, histogram sums would differ in the low float
  // bits: (S + x) - S != x once the shared registry has accumulated S.)
  MetricsRegistry::instance().reset();
  svc::Service a(telemetry_service_config(), catalog);
  const auto sa = a.run();
  const std::string ja = a.telemetry_jsonl();

  auto validated = telemetry_service_config();
  validated.validate_every_events = 32;
  MetricsRegistry::instance().reset();
  svc::Service b(validated, catalog);
  const auto sb = b.run();

  EXPECT_GT(sa.telemetry_windows, 0u);
  EXPECT_EQ(sa.telemetry_windows, sb.telemetry_windows);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, b.telemetry_jsonl());  // validators must not perturb telemetry
  EXPECT_GT(sb.validations_run, 0u);
  EXPECT_EQ(sa.report(), sb.report());

  // Every line follows the v1 schema and the window indices are monotone.
  std::istringstream lines(ja);
  std::string line;
  std::uint64_t expected = 0;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    EXPECT_EQ(doc.at("schema").string(), "harmony-telemetry-v1");
    EXPECT_DOUBLE_EQ(doc.at("window").number(), static_cast<double>(expected++));
  }
  EXPECT_EQ(expected, sa.telemetry_windows);
}

TEST(ServiceTelemetry, ImpossibleThroughputFloorPages) {
  auto config = telemetry_service_config();
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(obs::parse_slo("sched-throughput-floor=1000000", spec, error));
  spec.fast_windows = 1;
  spec.slow_windows = 2;
  spec.pending_windows = 1;
  config.slos.push_back(spec);

  svc::Service service(config, exp::make_catalog());
  const auto s = service.run();
  EXPECT_GT(s.slo_pages, 0u);
  ASSERT_EQ(service.slo_monitors().size(), 1u);
  EXPECT_GT(service.slo_monitors()[0].pages(), 0u);
  // The report's telemetry block names the objective.
  EXPECT_NE(s.report().find("sched-throughput-floor"), std::string::npos);
  EXPECT_NE(s.report().find("telemetry windows"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("harmony_flight_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    obs::FlightRecorder::instance().disarm();
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

obs::TraceEvent sim_instant(double t_sec, std::uint32_t job) {
  obs::TraceEvent e;
  e.ts_us = t_sec * 1e6;
  e.kind = obs::EventKind::kArrival;
  e.phase = obs::Phase::kInstant;
  e.clock = obs::ClockDomain::kSim;
  e.job = job;
  return e;
}

TEST_F(FlightRecorderTest, RingIsBoundedAndDumpCountIsCapped) {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.arm(dir_.string(), /*capacity=*/8, /*max_dumps=*/2);
  for (std::uint32_t i = 0; i < 20; ++i) recorder.append(sim_instant(i, i));
  EXPECT_EQ(recorder.ring_size(), 8u);

  EXPECT_TRUE(recorder.dump("test-dump", "first"));
  EXPECT_TRUE(recorder.dump("test-dump", "second"));
  EXPECT_FALSE(recorder.dump("test-dump", "over the cap"));  // disk-fill guard
  EXPECT_EQ(recorder.dumps(), 2u);

  ASSERT_TRUE(std::filesystem::exists(dir_ / "flight-0.context.json"));
  ASSERT_TRUE(std::filesystem::exists(dir_ / "flight-1.trace.json"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "flight-2.context.json"));

  // The trace half loads as JSON and carries the ring (newest 8 events).
  const auto trace = parse_json(slurp(dir_ / "flight-0.trace.json"));
  EXPECT_GE(trace.at("traceEvents").array().size(), 8u);
  const auto context = parse_json(slurp(dir_ / "flight-0.context.json"));
  EXPECT_EQ(context.at("schema").string(), "harmony-flight-v1");
  EXPECT_EQ(context.at("reason").string(), "test-dump");
  EXPECT_DOUBLE_EQ(context.at("events_in_ring").number(), 8.0);
}

TEST_F(FlightRecorderTest, DisarmedRecorderIsInert) {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.disarm();
  recorder.append(sim_instant(1.0, 1));
  EXPECT_FALSE(recorder.dump("nobody-home"));
  EXPECT_FALSE(std::filesystem::exists(dir_));
}

TEST_F(FlightRecorderTest, CorruptionDumpNamesTheFailingValidator) {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.arm(dir_.string());

  auto config = telemetry_service_config();
  svc::Service service(config, exp::make_catalog());
  service.run();  // run() stamps seed/machines context while armed
  ASSERT_TRUE(service.validate_state().ok());

  service.corrupt_for_test(core::IncrementalScheduler::Corruption::kLostMachine);
  const auto report = service.validate_state();
  ASSERT_FALSE(report.ok());
  // The same path maybe_validate() takes on a mid-run failure: check::fail
  // pulls the flight-recorder handle, then throws.
  EXPECT_THROW(check::fail(report.failures.front()), check::CheckError);

  ASSERT_TRUE(std::filesystem::exists(dir_ / "flight-0.context.json"));
  const std::string context = slurp(dir_ / "flight-0.context.json");
  EXPECT_NE(context.find("\"reason\": \"check-failure\""), std::string::npos);
  EXPECT_NE(context.find("\"validator\": \"svc.service\""), std::string::npos);
  EXPECT_NE(context.find("\"seed\""), std::string::npos);  // run() context
  const auto trace = parse_json(slurp(dir_ / "flight-0.trace.json"));
  EXPECT_GT(trace.at("traceEvents").array().size(), 0u);  // arrivals/departures ring
}

}  // namespace
}  // namespace harmony
