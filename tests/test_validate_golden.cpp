// Golden determinism: --validate must be a pure observer. A run with
// validators on and a run with them off must produce bit-identical results —
// same event interleaving, same RNG draws, same reported metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"

namespace harmony::exp {
namespace {

std::vector<WorkloadSpec> small_workload(std::size_t n) {
  auto catalog = make_catalog(2021);
  std::vector<WorkloadSpec> out;
  const std::size_t stride = std::max<std::size_t>(1, catalog.size() / n);
  for (std::size_t i = 0; i < catalog.size() && out.size() < n; i += stride)
    out.push_back(catalog[i]);
  for (auto& s : out) s.iterations = std::min<std::size_t>(s.iterations, 12);
  return out;
}

struct RunResult {
  RunSummary summary;
  std::string timeline_tsv;
  double avg_jobs = 0.0;
  double avg_groups = 0.0;
  AlphaStats alpha;
  std::size_t sched_invocations = 0;
  std::size_t validations = 0;
};

RunResult run_once(bool validate, GroupingPolicy policy = GroupingPolicy::kHarmony) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  if (policy == GroupingPolicy::kIsolated) config = ClusterSimConfig::isolated();
  if (policy == GroupingPolicy::kRandom) config = ClusterSimConfig::naive(3);
  config.machines = 24;
  config.validate = validate;
  auto workload = small_workload(12);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  RunResult r;
  r.summary = sim.run();
  r.timeline_tsv = sim.timeline().tsv(40);
  r.avg_jobs = sim.avg_concurrent_jobs();
  r.avg_groups = sim.avg_concurrent_groups();
  r.alpha = sim.alpha_stats();
  r.sched_invocations = sim.sched_invocations();
  r.validations = sim.validations_run();
  return r;
}

void expect_identical(const RunResult& off, const RunResult& on) {
  // Exact comparisons on purpose: any perturbation of the event order or the
  // RNG stream shows up as a bit difference, not an epsilon.
  EXPECT_EQ(off.summary.makespan, on.summary.makespan);
  EXPECT_EQ(off.summary.mean_jct(), on.summary.mean_jct());
  EXPECT_EQ(off.summary.regroup_events, on.summary.regroup_events);
  EXPECT_EQ(off.summary.oom_events, on.summary.oom_events);
  EXPECT_EQ(off.summary.migration_overhead_sec, on.summary.migration_overhead_sec);
  EXPECT_EQ(off.summary.gc_time_fraction, on.summary.gc_time_fraction);
  EXPECT_EQ(off.summary.avg_util.cpu, on.summary.avg_util.cpu);
  EXPECT_EQ(off.summary.avg_util.net, on.summary.avg_util.net);
  ASSERT_EQ(off.summary.jobs.size(), on.summary.jobs.size());
  for (std::size_t i = 0; i < off.summary.jobs.size(); ++i) {
    EXPECT_EQ(off.summary.jobs[i].job, on.summary.jobs[i].job);
    EXPECT_EQ(off.summary.jobs[i].finish_time, on.summary.jobs[i].finish_time);
  }
  EXPECT_EQ(off.timeline_tsv, on.timeline_tsv);
  EXPECT_EQ(off.avg_jobs, on.avg_jobs);
  EXPECT_EQ(off.avg_groups, on.avg_groups);
  EXPECT_EQ(off.alpha.mean, on.alpha.mean);
  EXPECT_EQ(off.alpha.min, on.alpha.min);
  EXPECT_EQ(off.alpha.max, on.alpha.max);
  EXPECT_EQ(off.alpha.jobs_at_one, on.alpha.jobs_at_one);
  EXPECT_EQ(off.sched_invocations, on.sched_invocations);
}

TEST(ValidateGolden, HarmonyRunIsBitIdenticalWithValidationOn) {
  const RunResult off = run_once(false);
  const RunResult on = run_once(true);
  EXPECT_EQ(off.validations, 0u);
  EXPECT_GT(on.validations, 0u);  // the validators really ran
  expect_identical(off, on);
}

TEST(ValidateGolden, IsolatedRunIsBitIdenticalWithValidationOn) {
  const RunResult off = run_once(false, GroupingPolicy::kIsolated);
  const RunResult on = run_once(true, GroupingPolicy::kIsolated);
  EXPECT_GE(on.validations, 1u);  // at least the end-of-run pass
  expect_identical(off, on);
}

TEST(ValidateGolden, NaiveRunIsBitIdenticalWithValidationOn) {
  const RunResult off = run_once(false, GroupingPolicy::kRandom);
  const RunResult on = run_once(true, GroupingPolicy::kRandom);
  EXPECT_GE(on.validations, 1u);
  expect_identical(off, on);
}

TEST(ValidateGolden, ValidationOnIsRepeatable) {
  const RunResult a = run_once(true);
  const RunResult b = run_once(true);
  EXPECT_EQ(a.validations, b.validations);
  expect_identical(a, b);
}

}  // namespace
}  // namespace harmony::exp
