// Deep validators: every validator passes on healthy state, and every
// deliberately injected corruption is detected with a report that names the
// broken invariant (not just "something failed").
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"
#include "harmony/spill_manager.h"
#include "harmony/spill_store.h"
#include "harmony/validate.h"
#include "sim/simulator.h"

namespace harmony {
namespace {

namespace fs = std::filesystem;

std::vector<exp::WorkloadSpec> small_workload(std::size_t n) {
  auto catalog = exp::make_catalog(2021);
  std::vector<exp::WorkloadSpec> out;
  const std::size_t stride = std::max<std::size_t>(1, catalog.size() / n);
  for (std::size_t i = 0; i < catalog.size() && out.size() < n; i += stride)
    out.push_back(catalog[i]);
  for (auto& s : out) s.iterations = std::min<std::size_t>(s.iterations, 12);
  return out;
}

// ---------------------------------------------------------------------------
// Scheduler decisions

core::SchedJob sched_job(core::JobId id) {
  core::SchedJob j;
  j.id = id;
  j.profile.cpu_work = 100.0;
  j.profile.t_net = 1.0;
  return j;
}

TEST(ValidateDecision, HealthyDecisionPasses) {
  std::vector<core::SchedJob> pool = {sched_job(0), sched_job(1), sched_job(2)};
  core::ScheduleDecision d;
  d.groups.push_back(core::GroupPlan{{0, 2}, 4});
  d.groups.push_back(core::GroupPlan{{1}, 2});
  d.jobs_scheduled = 3;
  check::Validation v("decision");
  core::validate_decision(d, pool, 8, v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
  EXPECT_GT(v.report().checks_run, 0u);
}

TEST(ValidateDecision, OverAllocatedBudgetDetected) {
  std::vector<core::SchedJob> pool = {sched_job(0), sched_job(1)};
  core::ScheduleDecision d;
  d.groups.push_back(core::GroupPlan{{0}, 5});
  d.groups.push_back(core::GroupPlan{{1}, 4});
  d.jobs_scheduled = 2;
  check::Validation v("decision");
  core::validate_decision(d, pool, 8, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("budget")) << v.report().to_string();
}

TEST(ValidateDecision, DuplicatePlacementDetected) {
  std::vector<core::SchedJob> pool = {sched_job(0), sched_job(1)};
  core::ScheduleDecision d;
  d.groups.push_back(core::GroupPlan{{0, 1}, 2});
  d.groups.push_back(core::GroupPlan{{1}, 2});
  d.jobs_scheduled = 3;
  check::Validation v("decision");
  core::validate_decision(d, pool, 8, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("more than one group")) << v.report().to_string();
}

TEST(ValidateDecision, ForeignJobAndZeroMachinesDetected) {
  std::vector<core::SchedJob> pool = {sched_job(0)};
  core::ScheduleDecision d;
  d.groups.push_back(core::GroupPlan{{7}, 0});
  d.jobs_scheduled = 1;
  check::Validation v("decision");
  core::validate_decision(d, pool, 8, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("zero machines"));
  EXPECT_TRUE(v.report().mentions("not in the scheduling pool"));
  // Failures accumulate: one broken plan does not mask the other checks.
  EXPECT_GE(v.report().failures.size(), 2u);
}

TEST(ValidateDecision, WrongJobsScheduledCountDetected) {
  std::vector<core::SchedJob> pool = {sched_job(0), sched_job(1)};
  core::ScheduleDecision d;
  d.groups.push_back(core::GroupPlan{{0}, 2});
  d.jobs_scheduled = 2;  // claims two, placed one
  check::Validation v("decision");
  core::validate_decision(d, pool, 8, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("jobs_scheduled")) << v.report().to_string();
}

// ---------------------------------------------------------------------------
// Block manager (spill byte accounting)

TEST(ValidateBlockManager, HealthyAfterSpillAndReload) {
  core::BlockManager blocks(1000.0, 100.0);
  blocks.set_alpha(0.6);
  blocks.set_alpha(0.3);
  check::Validation v("blocks");
  core::validate_block_manager(blocks, v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
}

TEST(ValidateBlockManager, CorruptedBlockBreaksSuffixInvariant) {
  core::BlockManager blocks(1000.0, 100.0);
  blocks.set_alpha(0.5);  // blocks 5..9 on disk
  blocks.corrupt_block_for_test(0);  // flips a front (memory) block to disk
  check::Validation v("blocks");
  core::validate_block_manager(blocks, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("suffix")) << v.report().to_string();
}

// ---------------------------------------------------------------------------
// Disk spill store (ledger vs files on disk)

class SpillStoreValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique: concurrent ctest runs from different build trees must not
    // clobber each other's spill files.
    dir_ = fs::temp_directory_path() /
           ("harmony-validate-store-test-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(SpillStoreValidatorTest, HealthyLedgerPasses) {
  core::DiskSpillStore store(dir_);
  const std::vector<double> data(64, 1.5);
  store.spill(1, 0, data);
  store.spill(1, 1, data);
  store.spill(2, 0, data);
  store.remove(1, 1);
  check::Validation v("store");
  core::validate_spill_store(store, v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
}

TEST_F(SpillStoreValidatorTest, TruncatedSpillFileDetected) {
  core::DiskSpillStore store(dir_);
  const std::vector<double> data(64, 1.5);
  store.spill(3, 7, data);
  // Tamper: truncate the on-disk file behind the ledger's back.
  fs::path victim;
  for (const auto& entry : fs::directory_iterator(store.dir()))
    victim = entry.path();
  ASSERT_FALSE(victim.empty());
  std::ofstream(victim, std::ios::binary | std::ios::trunc).put('x');
  check::Validation v("store");
  core::validate_spill_store(store, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("ledger expects")) << v.report().to_string();
}

TEST_F(SpillStoreValidatorTest, MissingSpillFileDetected) {
  core::DiskSpillStore store(dir_);
  const std::vector<double> data(16, 2.0);
  store.spill(4, 0, data);
  for (const auto& entry : fs::directory_iterator(store.dir()))
    fs::remove(entry.path());
  check::Validation v("store");
  core::validate_spill_store(store, v);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.report().mentions("missing")) << v.report().to_string();
}

// ---------------------------------------------------------------------------
// Simulator event heap

TEST(ValidateSimulator, HealthyHeapPasses) {
  sim::Simulator s;
  for (int i = 0; i < 20; ++i) s.schedule_at(20.0 - i, [] {});
  s.run(5);
  check::Validation v("sim");
  s.validate(v);
  EXPECT_TRUE(v.ok()) << v.report().to_string();
}

TEST(ValidateSimulator, ClockAheadOfPendingEventsDetected) {
  sim::Simulator s;
  s.schedule_at(10.0, [] {});
  s.corrupt_clock_for_test(50.0);  // pending event is now in the past
  check::Validation v("sim");
  s.validate(v);
  EXPECT_FALSE(v.ok());
}

// Structural corruption of the queue itself, on both implementations: the
// validator must understand the binary heap's ordering invariant and the
// calendar queue's bucket-placement / far-ladder layout.
class SimulatorQueueCorruption : public ::testing::TestWithParam<sim::EventQueueKind> {};

TEST_P(SimulatorQueueCorruption, MisorderedNodeDetected) {
  sim::Simulator s(GetParam());
  for (int i = 0; i < 64; ++i) s.schedule_at(1.0 + i, [] {});
  s.schedule_at(1e9, [] {});  // populate the calendar's far ladder too
  s.run(8);
  {
    check::Validation clean("sim");
    s.validate(clean);
    ASSERT_TRUE(clean.ok()) << clean.report().to_string();
  }
  s.corrupt_queue_order_for_test();
  check::Validation v("sim");
  s.validate(v);
  const auto report = v.report();
  ASSERT_FALSE(report.ok());
  if (GetParam() == sim::EventQueueKind::kBinaryHeap) {
    EXPECT_TRUE(report.mentions("heap property")) << report.to_string();
  } else {
    EXPECT_TRUE(report.mentions("calendar bucket") || report.mentions("far ladder"))
        << report.to_string();
  }
}

TEST_P(SimulatorQueueCorruption, DuplicateNodeDetected) {
  sim::Simulator s(GetParam());
  for (int i = 0; i < 32; ++i) s.schedule_at(1.0 + i, [] {});
  s.corrupt_queue_duplicate_for_test();
  check::Validation v("sim");
  s.validate(v);
  const auto report = v.report();
  ASSERT_FALSE(report.ok());
  // Both the per-slot recount and the arena/queue live-count cross-check
  // must name the double-queued event.
  EXPECT_TRUE(report.mentions("expected exactly 1")) << report.to_string();
  EXPECT_TRUE(report.mentions("the queue holds nodes for")) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(BothQueues, SimulatorQueueCorruption,
                         ::testing::Values(sim::EventQueueKind::kBinaryHeap,
                                           sim::EventQueueKind::kCalendar),
                         [](const ::testing::TestParamInfo<sim::EventQueueKind>& info) {
                           return info.param == sim::EventQueueKind::kCalendar
                                      ? "Calendar"
                                      : "BinaryHeap";
                         });

// ---------------------------------------------------------------------------
// ClusterSim deep state validation

TEST(ClusterSimValidate, HealthyRunIsCleanAtEveryRegroupEvent) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 24;
  config.validate = true;
  auto workload = small_workload(12);
  exp::ClusterSim sim(config, workload, exp::batch_arrivals(workload.size()));
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 12u);
  EXPECT_GT(sim.validations_run(), 0u);
  // Quiescent end state also validates clean.
  EXPECT_TRUE(sim.validate_state().ok()) << sim.validate_state().to_string();
}

struct CorruptionCase {
  exp::ClusterSim::Corruption kind;
  const char* needle;  // the report must name the broken invariant
};

class ClusterSimCorruption : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(ClusterSimCorruption, InjectedCorruptionTripsItsValidator) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 24;
  config.validate = true;
  auto workload = small_workload(12);
  exp::ClusterSim sim(config, workload, exp::batch_arrivals(workload.size()));
  // Mid-run: groups exist, spill ratios are live, indexes are busy.
  sim.schedule_corruption_for_test(3000.0, GetParam().kind);
  try {
    sim.run();
    FAIL() << "corrupted state escaped validation";
  } catch (const check::CheckError& e) {
    EXPECT_EQ(e.report().validator, "cluster_sim");
    // The corrupted state is still in place: the full report must name the
    // broken invariant (the throw only carries the first failure).
    const auto report = sim.validate_state();
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions(GetParam().needle)) << report.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ClusterSimCorruption,
    ::testing::Values(
        CorruptionCase{exp::ClusterSim::Corruption::kBadIndexEntry, "index"},
        CorruptionCase{exp::ClusterSim::Corruption::kOverAllocatedMachine,
                       "machine conservation"},
        CorruptionCase{exp::ClusterSim::Corruption::kSkewedSpillAlpha,
                       "disk ratio out of range"},
        CorruptionCase{exp::ClusterSim::Corruption::kBrokenMembership,
                       "bidirectional"}));

TEST(ClusterSimValidate, PostRunCorruptionCaughtByDirectCall) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 24;
  auto workload = small_workload(8);
  exp::ClusterSim sim(config, workload, exp::batch_arrivals(workload.size()));
  sim.run();
  ASSERT_TRUE(sim.validate_state().ok());
  sim.corrupt_for_test(exp::ClusterSim::Corruption::kBadIndexEntry);
  const auto report = sim.validate_state();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.mentions("bad index entry")) << report.to_string();
}

TEST(ClusterSimValidate, ValidationOffRunsNoPasses) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 24;
  auto workload = small_workload(8);
  exp::ClusterSim sim(config, workload, exp::batch_arrivals(workload.size()));
  sim.run();
  EXPECT_EQ(sim.validations_run(), 0u);
}

}  // namespace
}  // namespace harmony
