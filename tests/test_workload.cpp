#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exp/arrivals.h"
#include "exp/metrics.h"
#include "exp/workload.h"

namespace harmony::exp {
namespace {

TEST(Catalog, EightyJobsFourAppsTwoDatasets) {
  const auto catalog = make_catalog();
  EXPECT_EQ(catalog.size(), 80u);
  std::set<std::string> apps, datasets;
  for (const auto& s : catalog) {
    apps.insert(s.app);
    datasets.insert(s.dataset);
  }
  EXPECT_EQ(apps.size(), 4u);
  EXPECT_EQ(datasets.size(), 8u);
  EXPECT_TRUE(apps.contains("NMF"));
  EXPECT_TRUE(apps.contains("LDA"));
  EXPECT_TRUE(apps.contains("MLR"));
  EXPECT_TRUE(apps.contains("Lasso"));
}

TEST(Catalog, DeterministicInSeed) {
  const auto a = make_catalog(7);
  const auto b = make_catalog(7);
  const auto c = make_catalog(8);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].cpu_work, b[0].cpu_work);
  EXPECT_NE(a[0].cpu_work, c[0].cpu_work);
}

TEST(Catalog, IdsAreSequential) {
  const auto catalog = make_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    EXPECT_EQ(catalog[i].id, static_cast<core::JobId>(i));
}

TEST(Catalog, Fig9IterationTimeRange) {
  // At DoP 16, iteration times span roughly 1-20 minutes (Fig. 9a).
  const auto catalog = make_catalog();
  double lo = 1e300, hi = 0.0;
  for (const auto& s : catalog) {
    const double t = s.profile().t_itr(16);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    EXPECT_GT(t, 30.0);
    EXPECT_LT(t, 1500.0);
  }
  EXPECT_LT(lo, 240.0);  // some fast jobs
  EXPECT_GT(hi, 600.0);  // some slow jobs
}

TEST(Catalog, Fig9CompRatioSpread) {
  const auto catalog = make_catalog();
  std::size_t low = 0, high = 0;
  for (const auto& s : catalog) {
    const double r = s.profile().comp_ratio(16);
    EXPECT_GT(r, 0.05);
    EXPECT_LT(r, 0.95);
    if (r < 0.4) ++low;
    if (r > 0.6) ++high;
  }
  // The spread covers both comm-heavy and comp-heavy jobs (Fig. 9b).
  EXPECT_GT(low, 10u);
  EXPECT_GT(high, 10u);
}

TEST(Catalog, TableISizes) {
  const auto catalog = make_catalog();
  for (const auto& s : catalog) {
    if (s.dataset == "Netflix64x") {
      EXPECT_DOUBLE_EQ(s.input_gb, 45.6);
      EXPECT_DOUBLE_EQ(s.model_gb, 1.0);
    }
    if (s.dataset == "PubMed") {
      EXPECT_DOUBLE_EQ(s.input_gb, 4.3);
      EXPECT_DOUBLE_EQ(s.model_gb, 2.1);
    }
  }
  const std::string table = table1(catalog);
  EXPECT_NE(table.find("NMF"), std::string::npos);
  EXPECT_NE(table.find("45.6"), std::string::npos);
}

TEST(Catalog, LdaIsComputeHeavierThanMlr) {
  const auto catalog = make_catalog();
  double lda_ratio = 0.0, mlr_ratio = 0.0;
  std::size_t lda_n = 0, mlr_n = 0;
  for (const auto& s : catalog) {
    if (s.app == "LDA") {
      lda_ratio += s.profile().comp_ratio(16);
      ++lda_n;
    }
    if (s.app == "MLR") {
      mlr_ratio += s.profile().comp_ratio(16);
      ++mlr_n;
    }
  }
  EXPECT_GT(lda_ratio / lda_n, mlr_ratio / mlr_n);
}

TEST(Catalog, ResidentBytesScaleWithAlphaAndMachines) {
  const auto catalog = make_catalog();
  const WorkloadSpec& s = catalog.front();
  EXPECT_GT(s.resident_bytes(8, 0.0), s.resident_bytes(8, 0.5));
  EXPECT_GT(s.resident_bytes(8, 0.0), s.resident_bytes(16, 0.0));
}

TEST(Catalog, MinMachinesMatchesMemoryNeed) {
  const auto catalog = make_catalog();
  cluster::MachineSpec spec;
  for (const auto& s : catalog) {
    const std::size_t m = s.min_machines_without_spill(spec);
    EXPECT_GE(m, 1u);
    // At that DoP the job fits in the default budget fraction (0.65, the GC
    // knee)...
    EXPECT_LE(s.resident_bytes(m, 0.0), 0.65 * spec.memory_bytes + 1.0);
    // ...and one fewer machine would not (unless already at 1).
    if (m > 1) {
      EXPECT_GT(s.resident_bytes(m - 1, 0.0), 0.65 * spec.memory_bytes);
    }
  }
}

TEST(Subsets, SplitByCompRatio) {
  const auto catalog = make_catalog();
  const auto comp = comp_intensive_subset(catalog, 60);
  const auto comm = comm_intensive_subset(catalog, 60);
  EXPECT_EQ(comp.size(), 60u);
  EXPECT_EQ(comm.size(), 60u);
  double comp_mean = 0.0, comm_mean = 0.0;
  for (const auto& s : comp) comp_mean += s.profile().comp_ratio(16);
  for (const auto& s : comm) comm_mean += s.profile().comp_ratio(16);
  EXPECT_GT(comp_mean / 60.0, comm_mean / 60.0 + 0.1);
}

// ---------------------------------------------------------------------------

TEST(Arrivals, BatchAllAtZero) {
  const auto a = batch_arrivals(5);
  ASSERT_EQ(a.size(), 5u);
  for (double t : a) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Arrivals, PoissonMeanInterArrival) {
  const auto a = poisson_arrivals(2000, 60.0, 5);
  ASSERT_EQ(a.size(), 2000u);
  EXPECT_DOUBLE_EQ(a.front(), 0.0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  const double mean_gap = a.back() / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap, 60.0, 6.0);
}

TEST(Arrivals, PoissonZeroMeanIsBatch) {
  const auto a = poisson_arrivals(4, 0.0, 1);
  for (double t : a) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Arrivals, TraceArrivalsSortedFromZero) {
  const auto a = trace_arrivals(500, 120.0, 9);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_DOUBLE_EQ(a.front(), 0.0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
}

TEST(Arrivals, TraceIsBurstierThanPoisson) {
  // Coefficient of variation of inter-arrival gaps: Poisson ~1, bursty > 1.
  auto cv = [](const std::vector<double>& arr) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < arr.size(); ++i) gaps.push_back(arr[i] - arr[i - 1]);
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return std::sqrt(var) / mean;
  };
  const auto poisson = poisson_arrivals(1500, 60.0, 11);
  const auto trace = trace_arrivals(1500, 60.0, 11);
  EXPECT_GT(cv(trace), cv(poisson) * 1.2);
}

// ---------------------------------------------------------------------------

TEST(Metrics, TimelineAverages) {
  UtilizationTimeline tl(60.0);
  tl.add_sample(60.0, {0.5, 0.3});
  tl.add_sample(120.0, {0.7, 0.5});
  tl.add_sample(180.0, {0.9, 0.7});
  const auto avg = tl.average();
  EXPECT_NEAR(avg.cpu, 0.7, 1e-12);
  EXPECT_NEAR(avg.net, 0.5, 1e-12);
  const auto early = tl.average_until(120.0);
  EXPECT_NEAR(early.cpu, 0.6, 1e-12);
}

TEST(Metrics, TimelineTsv) {
  UtilizationTimeline tl(60.0);
  for (int i = 1; i <= 10; ++i)
    tl.add_sample(60.0 * i, {0.1 * i, 0.05 * i});
  const std::string tsv = tl.tsv(5);
  EXPECT_FALSE(tsv.empty());
  EXPECT_NE(tsv.find('\t'), std::string::npos);
}

TEST(Metrics, RunSummaryJctAndMakespan) {
  RunSummary s;
  s.jobs.push_back(JobOutcome{0, 0.0, 100.0});
  s.jobs.push_back(JobOutcome{1, 50.0, 250.0});
  EXPECT_DOUBLE_EQ(s.mean_jct(), 150.0);
  EXPECT_DOUBLE_EQ(s.max_finish(), 250.0);
}

}  // namespace
}  // namespace harmony::exp
