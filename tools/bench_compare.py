#!/usr/bin/env python3
"""Bench regression tracking over bench/results/*.json.

Aggregates every google-benchmark JSON report under bench/results/ into a
compact baseline (bench/results/HISTORY.json) and compares fresh results
against the committed baseline, failing on significant slowdowns.

    bench_compare.py --check [--results DIR] [--threshold 0.15]
        Compare each report's benchmarks against the committed baseline.
        Exit 1 if any benchmark's real_time regressed by more than the
        threshold (default 15%). New benchmarks (not in the baseline) and
        benchmarks that disappeared are reported but never fail the check,
        so adding or retiring a benchmark does not need a baseline dance.

    bench_compare.py --update [--results DIR]
        Rewrite HISTORY.json from the current reports. Run this (and commit
        the result) when a slowdown is intentional or a benchmark changed
        meaning.

The baseline stores, per benchmark name, the real_time in its time_unit —
timing only, no context, so HISTORY.json diffs stay readable. Reports whose
top level carries a "harmony_metrics" member (attach_metrics_snapshot) are
handled like any other: only the "benchmarks" array is read.

Timings on shared CI runners are noisy; 15% is deliberately loose. It will
not catch a 5% drift, but it catches the accidental O(n^2) — and the
baseline is regenerated deliberately, so drift does not compound.
"""

import argparse
import json
import os
import sys

BASELINE_NAME = "HISTORY.json"


def load_reports(results_dir):
    """Yields (filename, benchmarks-list) for every report in the directory."""
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json") or name == BASELINE_NAME:
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            raise SystemExit(f"bench_compare: cannot read {path}: {e}")
        benchmarks = doc.get("benchmarks")
        if not isinstance(benchmarks, list):
            raise SystemExit(f"bench_compare: {path} has no 'benchmarks' array")
        yield name, benchmarks


def collect(results_dir):
    """{report file: {benchmark name: {"real_time": t, "time_unit": u}}}."""
    history = {}
    for report, benchmarks in load_reports(results_dir):
        entry = {}
        for bm in benchmarks:
            # Aggregate rows (mean/median/stddev) would double-count; keep
            # plain iteration rows only.
            if bm.get("run_type", "iteration") != "iteration":
                continue
            name = bm.get("name")
            if name is None or "real_time" not in bm:
                continue
            entry[name] = {
                "real_time": bm["real_time"],
                "time_unit": bm.get("time_unit", "ns"),
            }
        history[report] = entry
    return history


def update(results_dir):
    history = collect(results_dir)
    path = os.path.join(results_dir, BASELINE_NAME)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"schema": "harmony-bench-history-v1", "reports": history},
                  f, indent=2, sort_keys=True)
        f.write("\n")
    total = sum(len(v) for v in history.values())
    print(f"bench_compare: wrote {path} "
          f"({len(history)} reports, {total} benchmarks)")
    return 0


def check(results_dir, threshold):
    path = os.path.join(results_dir, BASELINE_NAME)
    try:
        with open(path, encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError:
        raise SystemExit(
            f"bench_compare: no baseline at {path}; run --update and commit it")
    base_reports = baseline.get("reports", {})
    current = collect(results_dir)

    regressions = []
    improvements = []
    new_benchmarks = []
    for report, benchmarks in current.items():
        base = base_reports.get(report, {})
        for name, bm in benchmarks.items():
            if name not in base:
                new_benchmarks.append(f"{report}:{name}")
                continue
            old = base[name]
            if bm["time_unit"] != old["time_unit"]:
                # Unit changed: not comparable; treat as new.
                new_benchmarks.append(f"{report}:{name} (unit changed)")
                continue
            if old["real_time"] <= 0:
                continue
            ratio = bm["real_time"] / old["real_time"]
            line = (f"{report}:{name}  {old['real_time']:.6g} -> "
                    f"{bm['real_time']:.6g} {bm['time_unit']} "
                    f"({100.0 * (ratio - 1.0):+.1f}%)")
            if ratio > 1.0 + threshold:
                regressions.append(line)
            elif ratio < 1.0 - threshold:
                improvements.append(line)

    missing = []
    for report, base in base_reports.items():
        seen = current.get(report, {})
        for name in base:
            if name not in seen:
                missing.append(f"{report}:{name}")

    for label, lines in (("new (not in baseline)", new_benchmarks),
                         ("missing (in baseline, not in results)", missing),
                         ("improved", improvements)):
        if lines:
            print(f"bench_compare: {label}:")
            for line in lines:
                print(f"  {line}")
    if regressions:
        print(f"bench_compare: FAIL — {len(regressions)} benchmark(s) "
              f"regressed more than {100.0 * threshold:.0f}%:")
        for line in regressions:
            print(f"  {line}")
        print("bench_compare: if intentional, re-baseline with --update "
              "and commit HISTORY.json")
        return 1
    compared = sum(len(v) for v in current.values()) - len(new_benchmarks)
    print(f"bench_compare: OK — {compared} benchmark(s) within "
          f"{100.0 * threshold:.0f}% of baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Aggregate bench/results/*.json and track regressions.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare results against the committed baseline")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baseline from the current results")
    parser.add_argument("--results", default="bench/results",
                        help="results directory (default: bench/results)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed real_time regression fraction "
                             "(default: 0.15)")
    args = parser.parse_args()
    if not os.path.isdir(args.results):
        raise SystemExit(f"bench_compare: no such directory: {args.results}")
    if args.update:
        return update(args.results)
    return check(args.results, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
