#!/usr/bin/env python3
"""Validates harmony-sim telemetry artifacts.

Two checkers, picked by flag:

  --jsonl FILE   every line is a standalone JSON object following the
                 harmony-telemetry-v1 schema: monotone window indices,
                 start <= end, counters/rates/gauges/histograms maps with
                 numeric values, rates consistent with counter deltas over
                 the window, and (when present) well-formed "slos" entries.
  --prom FILE    Prometheus text exposition (version 0.0.4 subset): every
                 sample line parses, every metric is preceded by its # TYPE,
                 histogram _bucket counts are cumulative and end with +Inf,
                 and _count equals the +Inf bucket.

Both checkers may be given in one invocation. Exit status: 0 = all files
valid, 1 = violations (printed one per line), 2 = usage error.

CI runs this after the service-mode smoke:
  harmony-sim --service ... --telemetry-out t.jsonl --prom-out p.txt
  python3 tools/check_telemetry.py --jsonl t.jsonl --prom p.txt
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

SCHEMA = "harmony-telemetry-v1"
ALERT_STATES = {"inactive", "pending", "firing", "resolved"}

PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\+?Inf|NaN))$")
PROM_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")


def is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def check_jsonl(path: str) -> list[str]:
    errors: list[str] = []
    expected_window = None
    prev_end = None
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        return [f"{path}: empty telemetry file"]
    for no, line in enumerate(lines, start=1):
        where = f"{path}:{no}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: not valid JSON: {e}")
            continue
        if obj.get("schema") != SCHEMA:
            errors.append(f"{where}: schema is {obj.get('schema')!r}, want {SCHEMA!r}")
            continue
        window = obj.get("window")
        if expected_window is not None and window != expected_window:
            errors.append(f"{where}: window {window}, expected {expected_window}")
        expected_window = (window + 1) if isinstance(window, int) else None
        start, end = obj.get("start"), obj.get("end")
        if not (is_num(start) and is_num(end) and start <= end):
            errors.append(f"{where}: bad window bounds start={start} end={end}")
        elif prev_end is not None and start != prev_end:
            errors.append(f"{where}: window start {start} != previous end {prev_end}")
        prev_end = end if is_num(end) else None

        for section in ("counters", "gauges", "rates"):
            values = obj.get(section)
            if not isinstance(values, dict):
                errors.append(f"{where}: missing/bad {section} map")
                continue
            for name, v in values.items():
                if not is_num(v):
                    errors.append(f"{where}: {section}[{name}] = {v!r} is not a number")
        counters = obj.get("counters", {})
        rates = obj.get("rates", {})
        if isinstance(counters, dict) and isinstance(rates, dict):
            if set(counters) != set(rates):
                errors.append(f"{where}: counters and rates key sets differ")
            elif is_num(start) and is_num(end) and end > start:
                length = end - start
                for name, delta in counters.items():
                    want = delta / length
                    got = rates.get(name, 0.0)
                    if is_num(delta) and abs(got - want) > 1e-9 * max(1.0, abs(want)):
                        errors.append(
                            f"{where}: rates[{name}] = {got}, want delta/len = {want}")
        hists = obj.get("histograms")
        if not isinstance(hists, dict):
            errors.append(f"{where}: missing/bad histograms map")
        else:
            for name, h in hists.items():
                if not isinstance(h, dict) or \
                   not all(is_num(h.get(k)) for k in ("count", "sum", "p50", "p99")):
                    errors.append(f"{where}: histograms[{name}] malformed: {h!r}")
        for slo in obj.get("slos", []):
            if not isinstance(slo, dict) or "name" not in slo or \
               slo.get("state") not in ALERT_STATES or not is_num(slo.get("value")) or \
               slo.get("breached") not in (0, 1):
                errors.append(f"{where}: malformed slo entry: {slo!r}")
    return errors


def check_prom(path: str) -> list[str]:
    errors: list[str] = []
    typed: dict[str, str] = {}
    buckets: dict[str, list[tuple[str, float]]] = {}
    counts: dict[str, float] = {}
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        return [f"{path}: empty exposition file"]
    for no, line in enumerate(lines, start=1):
        where = f"{path}:{no}"
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = PROM_TYPE_RE.match(line)
                if not m:
                    errors.append(f"{where}: malformed # TYPE line: {line!r}")
                else:
                    typed[m.group(1)] = m.group(2)
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: malformed sample line: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        base = re.sub(r"_(?:total|bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            errors.append(f"{where}: sample {name} has no preceding # TYPE")
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if not le:
                errors.append(f"{where}: _bucket sample without le label")
            else:
                buckets.setdefault(base, []).append((le.group(1), float(value)))
        elif name.endswith("_count"):
            counts[base] = float(value)
    for base, series in buckets.items():
        if not series or series[-1][0] != "+Inf":
            errors.append(f"{path}: histogram {base} buckets do not end with le=\"+Inf\"")
            continue
        values = [v for _, v in series]
        if any(b > a for b, a in zip(values, values[1:])):
            errors.append(f"{path}: histogram {base} bucket counts are not cumulative")
        if base in counts and counts[base] != values[-1]:
            errors.append(
                f"{path}: histogram {base} _count {counts[base]} != +Inf bucket {values[-1]}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--jsonl", action="append", default=[],
                        help="telemetry JSONL file to validate (repeatable)")
    parser.add_argument("--prom", action="append", default=[],
                        help="Prometheus exposition file to validate (repeatable)")
    args = parser.parse_args()
    if not args.jsonl and not args.prom:
        parser.error("nothing to check: pass --jsonl and/or --prom")

    errors: list[str] = []
    for path in args.jsonl:
        errors += check_jsonl(path)
    for path in args.prom:
        errors += check_prom(path)
    for e in errors:
        print(e)
    checked = len(args.jsonl) + len(args.prom)
    if errors:
        print(f"check_telemetry: {len(errors)} violation(s) across {checked} file(s)")
        return 1
    print(f"check_telemetry: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
