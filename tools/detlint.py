#!/usr/bin/env python3
"""detlint: AST-grade determinism static analysis for the Harmony tree.

tools/lint.py enforces the determinism contract with line-regexes; this pass
works on a structural representation instead: each translation unit named by
the compile database (compile_commands.json, via find_compile_commands from
tools/lint.py) plus every header in the deterministic directories is lexed
into a C++ token stream, declarations / records / loops are parsed out of it,
and per-TU facts are assembled through the project include closure so that a
range-for in a .cpp file over a member declared in a header three includes
away still resolves to the member's container type. (The analyzer carries its
own lexer+parser rather than shelling out to `clang -Xclang -ast-dump=json`
so the gate also runs in gcc-only containers; the facts it extracts —
declared types, loop structure, member init state — are the AST slice the
rules need.)

Rule families (all scoped to DETERMINISTIC_DIRS):

  unordered-iteration   A range-for or iterator walk over a std::unordered_map
                        / std::unordered_set whose body escapes values
                        (accumulates into outer state, appends, traces, emits,
                        returns) leaks hash-table order into results. Route
                        the loop through common::sorted_view / sorted_keys
                        (src/common/sorted_view.h), switch the container to
                        common::ordered_map, or justify the site with
                        `// detlint: sorted-iteration(<why>)`. Bodies that
                        only mutate the current element in place are
                        order-insensitive and pass.
  pointer-order         Ordering keyed on pointer values is address-order,
                        i.e. allocator/ASLR order: std::set/std::map keyed on
                        a raw pointer without a custom comparator, relational
                        comparisons between pointer-typed comparator
                        parameters, std::less<T*>, and explicit std::hash
                        over a pointer type. Hash-membership on pointers
                        (unordered_set<T*> used only for contains()) is fine —
                        iteration over it is caught by unordered-iteration.
                        Escape: `// detlint: pointer-order(<why>)`.
  uninit-member         A scalar (arithmetic/pointer) data member of a record
                        declared in a deterministic dir with no NSDMI and no
                        initialization in some constructor is read-of-
                        indeterminate waiting to happen — the classic source
                        of run-to-run drift that ASan/UBSan only catch on the
                        path that executes. NSDMI or every-ctor mem-init is
                        required. Escape: `// detlint: uninit-member(<why>)`.
  unseeded-random       rand()/srand(), std::random_device, an unseeded
                        std::mt19937, or branching on std::hash<std::string>
                        (implementation-defined across libstdc++/libc++)
                        inside deterministic code. Randomness flows through
                        common::Rng with an explicit seed (the seeded exp::
                        generators). Escape: `// detlint: seeded-random(<why>)`.

Escape comments carry a mandatory reason: `// detlint: <name>(<reason>)` on
the offending line or alone on the line above. tools/lint.py's
detlint-escape rule validates the reason is non-empty and the name is known.

Per-file parse facts are cached (--cache FILE) keyed on the file's content
hash plus the analyzer's own source hash, and parsing runs file-parallel
(--jobs), so warm CI runs only re-lex what changed. When
$GITHUB_STEP_SUMMARY is set, a per-rule finding-count table is appended to
the job summary, mirroring tools/lint.py.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import collections
import hashlib
import json
import multiprocessing
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lint import find_compile_commands  # noqa: E402  (shared compile-db probe)

# Mirrors tools/lint.py: the directories whose code must be bit-reproducible.
DETERMINISTIC_DIRS = ("src/sim", "src/harmony", "src/exp", "src/baselines",
                      "src/common", "src/svc")
SOURCE_EXTS = (".h", ".cpp")

RULE_NAMES = ("unordered-iteration", "pointer-order", "uninit-member",
              "unseeded-random")

# Escape-comment names, one per rule family. lint.py imports this set for its
# detlint-escape hygiene rule.
ESCAPE_NAMES = ("sorted-iteration", "pointer-order", "uninit-member",
                "seeded-random")
ESCAPE_TO_RULE = {
    "sorted-iteration": "unordered-iteration",
    "pointer-order": "pointer-order",
    "uninit-member": "uninit-member",
    "seeded-random": "unseeded-random",
}
ESCAPE_RE = re.compile(r"detlint:\s*([A-Za-z0-9_-]+)\s*\(([^)]*)\)")

UNORDERED_HEADS = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
ORDERED_ASSOC_HEADS = {"map", "set", "multimap", "multiset"}
OTHER_CONTAINER_HEADS = {"vector", "deque", "list", "forward_list", "array",
                         "span", "string", "basic_string", "string_view",
                         "bitset", "valarray", "initializer_list", "optional",
                         "variant", "pair", "tuple", "queue", "stack",
                         "priority_queue"} | ORDERED_ASSOC_HEADS
SCALAR_TYPES = {"bool", "char", "wchar_t", "char8_t", "char16_t", "char32_t",
                "short", "int", "long", "signed", "unsigned", "float",
                "double", "size_t", "ptrdiff_t", "intptr_t", "uintptr_t",
                "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t",
                "uint16_t", "uint32_t", "uint64_t", "intmax_t", "uintmax_t",
                "byte"}
TYPE_QUALIFIERS = {"const", "constexpr", "constinit", "volatile", "mutable",
                   "inline", "static", "extern", "typename", "struct",
                   "class", "enum", "register", "thread_local", "explicit",
                   "virtual", "friend", "using", "typedef", "signed",
                   "unsigned", "noexcept", "final", "override"}
# Calls that never leak iteration order by themselves.
PURE_CALLS = {"min", "max", "abs", "clamp", "move", "forward", "get",
              "to_string", "fabs", "sqrt", "floor", "ceil", "round", "isnan",
              "isinf", "swap_remove"}
# Read-only lookups: calling them on an outer container inside the loop body
# does not make the body order-sensitive on its own.
READONLY_METHODS = {"contains", "count", "find", "at", "size", "empty",
                    "cbegin", "cend", "lower_bound", "upper_bound", "get",
                    "value", "has_value", "front", "back", "data", "first",
                    "second", "str", "c_str", "length", "load"}
# Range factories that already impose a canonical order.
SORTED_FACTORIES = {"sorted_view", "sorted_keys", "sorted_items"}

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM = re.compile(r"(?:0[xXbB][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXuUlLfF+-]*)")
_PUNCTS = ("<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
           "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
           "^=", "++", "--", ".*")

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>="}


class Tok:
    __slots__ = ("kind", "v", "line")

    def __init__(self, kind, v, line):
        self.kind = kind   # 'id' | 'num' | 'str' | 'punct' | 'pp'
        self.v = v
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.v}@{self.line}"


def lex(text: str):
    """Tokenizes C++ source.

    Returns (tokens, includes, escapes, comment_only_lines) where includes is
    [(path, line)] for quoted project includes, escapes maps line ->
    {escape-name}, and comment_only_lines is the set of lines holding nothing
    but a comment (their escapes also cover the next line).
    """
    toks: list[Tok] = []
    includes: list[tuple[str, int]] = []
    escapes: dict[int, set[str]] = {}
    comment_only: set[int] = set()
    line_has_code: dict[int, bool] = {}

    def note_escape(comment: str, line: int):
        for m in ESCAPE_RE.finditer(comment):
            if m.group(1) in ESCAPE_NAMES:
                escapes.setdefault(line, set()).add(m.group(1))

    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            if j < 0:
                j = n
            note_escape(text[i:j], line)
            if not line_has_code.get(line):
                comment_only.add(line)
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            block = text[i : j + 2]
            note_escape(block, line)
            if not line_has_code.get(line) and "\n" not in block:
                comment_only.add(line)
            line += block.count("\n")
            i = j + 2
            continue
        if c == "#" and not line_has_code.get(line):
            # Preprocessor directive: consume to end of line (with
            # continuations), record quoted #include targets.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if text[j:k].rstrip().endswith("\\"):
                    line += 1
                    j = k + 1
                else:
                    break
            directive = text[i : k if k >= 0 else n]
            m = re.match(r'#\s*include\s+"([^"]+)"', directive)
            if m:
                includes.append((m.group(1), line))
            note_escape(directive, line)
            line += 0
            i = k
            continue
        if c == '"':
            if toks and toks[-1].kind == "id" and toks[-1].v == "R":
                # Raw string literal R"delim( ... )delim".
                m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i - 1 :])
                if m:
                    delim = m.group(1)
                    end = text.find(")" + delim + '"', i)
                    if end < 0:
                        end = n
                    seg = text[i : end + len(delim) + 2]
                    line_has_code[line] = True
                    toks[-1] = Tok("str", "<rawstr>", line)
                    line += seg.count("\n")
                    i = end + len(delim) + 2
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            line_has_code[line] = True
            toks.append(Tok("str", "<str>", line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            line_has_code[line] = True
            toks.append(Tok("str", "<chr>", line))
            i = j + 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM.match(text, i)
            line_has_code[line] = True
            toks.append(Tok("num", m.group(0), line))
            i = m.end()
            continue
        m = _WORD.match(text, i)
        if m:
            line_has_code[line] = True
            toks.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        if text.startswith("[[", i):
            # C++ attribute: skip to the matching ]].
            j = text.find("]]", i + 2)
            if j >= 0:
                line += text.count("\n", i, j)
                i = j + 2
                continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                line_has_code[line] = True
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            line_has_code[line] = True
            toks.append(Tok("punct", c, line))
            i += 1
    return toks, includes, escapes, comment_only


# --- token-stream helpers ----------------------------------------------------

OPEN = {"(": ")", "[": "]", "{": "}"}
CLOSE = {")": "(", "]": "[", "}": "{"}


def match_forward(toks, i):
    """Index of the token closing the bracket opened at i."""
    depth = 0
    opener = toks[i].v
    closer = OPEN[opener]
    while i < len(toks):
        v = toks[i].v
        if v == opener:
            depth += 1
        elif v == closer:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def skip_template(toks, i):
    """With toks[i].v == '<', returns index just past the matching '>'.

    Treats '>>' as two closes. Returns i+1 (i.e. treats '<' as less-than) if
    no plausible close is found within a window.
    """
    depth = 0
    j = i
    while j < len(toks) and j < i + 400:
        v = toks[j].v
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif v == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif v in (";", "{", "}") or v in ASSIGN_OPS:
            break  # statement ended: it was a comparison after all
        j += 1
    return i + 1


def chain_root(toks, i):
    """Root identifier of the postfix chain ending at token i (inclusive).

    Walks back over  id  .  ->  ::  (...)  [...]  *  to find the first
    identifier of expressions like  state.tasks_[k].second  →  'state'.
    """
    j = i
    root = None
    while j >= 0:
        v = toks[j].v
        if toks[j].kind == "id":
            root = toks[j].v
            if j > 0 and toks[j - 1].v in (".", "->", "::"):
                j -= 2
                continue
            break
        if v in (")", "]"):
            depth = 0
            while j >= 0:
                if toks[j].v in (")", "]"):
                    depth += 1
                elif toks[j].v in ("(", "["):
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            continue
        if v in ("*", "&"):
            j -= 1
            continue
        break
    return root


def last_chain_id(toks):
    """Last identifier of a postfix chain, e.g. pr.job_plan → 'job_plan'."""
    j = len(toks) - 1
    while j >= 0:
        if toks[j].kind == "id":
            return toks[j].v
        if toks[j].v in (")", "]"):
            depth = 0
            while j >= 0:
                if toks[j].v in (")", "]"):
                    depth += 1
                elif toks[j].v in ("(", "["):
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            continue
        if v_ignorable(toks[j].v):
            j -= 1
            continue
        return None
    return None


def v_ignorable(v):
    return v in ("*", "&", "const", ">")


# --- per-file parsing --------------------------------------------------------

def container_kind(head: str):
    if head in UNORDERED_HEADS:
        return "unordered"
    if head in OTHER_CONTAINER_HEADS:
        return "other"
    return None


def parse_file(path: str):
    """Extracts determinism facts from one C++ file. Pure; JSON-serializable."""
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    toks, includes, escapes, comment_only = lex(text)

    facts = {
        "includes": [p for p, _ in includes],
        "decls": [],        # [name, kind('unordered'|'other'), line]
        "aliases": [],      # [name, head-token]
        "auto_inits": [],   # [name, init-terminal, line]
        "range_fors": [],   # [line, terminal, is_call, sorted_ok, escapes]
        "iter_fors": [],    # [line, receiver, escapes]
        "records": [],      # [qualname, line, members, ctors]
        "oo_ctor_inits": [],  # [record, [init names], delegating]
        "ptr_order": [],    # [line, message]
        "unseeded": [],     # [line, message]
        "escapes": {str(l): sorted(s) for l, s in escapes.items()},
        "comment_only": sorted(comment_only),
    }

    n = len(toks)

    def tv(i):
        return toks[i].v if 0 <= i < n else ""

    # -- declarations, aliases, simple pattern rules --------------------------
    i = 0
    record_stack = []  # (qualname, body_open_depth) for rule-3 member scan
    depth = 0
    while i < n:
        t = toks[i]
        v = t.v
        if v == "{":
            depth += 1
        elif v == "}":
            depth -= 1
            while record_stack and record_stack[-1][1] > depth:
                record_stack.pop()

        if t.kind != "id":
            i += 1
            continue

        # using NAME = <type>;   /  typedef <type> NAME;
        if v == "using" and tv(i + 2) == "=":
            head = alias_head(toks, i + 3)
            if head:
                facts["aliases"].append([tv(i + 1), head])
            i += 3
            continue
        if v == "typedef":
            j = i + 1
            while j < n and tv(j) != ";":
                j += 1
            if j - 1 > i and toks[j - 1].kind == "id":
                head = alias_head(toks, i + 1)
                if head:
                    facts["aliases"].append([tv(j - 1), head])
            i = j
            continue

        # struct/class NAME ... { : record parse (rule 3)
        if v in ("struct", "class") and toks_is_record_intro(toks, i):
            qual = "::".join([r[0] for r in record_stack] + [tv(i + 1)])
            body = find_record_body(toks, i)
            if body is not None:
                rec = parse_record(toks, body[0], body[1], tv(i + 1), qual)
                facts["records"].append(rec)
                record_stack.append((tv(i + 1), depth + 1))
        if v == "enum":
            # skip enum bodies: enumerators are not member variables
            j = i + 1
            while j < n and tv(j) not in ("{", ";"):
                j += 1
            if tv(j) == "{":
                i = match_forward(toks, j)
                continue

        # container declarations / returns: [std::]head<...> [&*]* name
        kind = container_kind(v)
        if kind and tv(i + 1) == "<":
            j = skip_template(toks, i + 1)
            while tv(j) in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id" and toks[j].v not in TYPE_QUALIFIERS:
                facts["decls"].append([toks[j].v, kind, toks[j].line])
            # pointer-keyed ordered associative container (rule 2)
            if v in ("set", "map", "multiset", "multimap") and tv(i - 1) == "::" \
                    and tv(i - 2) == "std":
                args = template_args(toks, i + 1)
                if args and arg_is_pointer(args[0]) and len(args) < (3 if "map" in v else 2):
                    facts["ptr_order"].append(
                        [t.line, f"std::{v} keyed on a raw pointer orders by address; "
                                 "key on a stable id or supply a comparator"])
        # aliased-type declarations:  JobMap jobs_;
        if toks[i].kind == "id" and tv(i + 1) not in ("<", "(", "::") \
                and toks[i + 1 if i + 1 < n else i].kind == "id" \
                and tv(i + 2) in (";", "=", "{", ","):
            facts["decls"].append([tv(i + 1), "alias:" + v, toks[i].line])

        # auto it = EXPR;  /  auto& m = EXPR;
        if v == "auto":
            j = i + 1
            while tv(j) in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id" and tv(j + 1) == "=":
                k = j + 2
                stmt = []
                while k < n and tv(k) != ";":
                    stmt.append(toks[k])
                    k += 1
                term = last_chain_id(stmt) if stmt else None
                if term:
                    facts["auto_inits"].append([tv(j), term, toks[j].line])

        # out-of-line constructor:  Name::Name( ... ) : inits {
        if tv(i + 1) == "::" and tv(i + 2) == v and tv(i + 3) == "(":
            close = match_forward(toks, i + 3)
            inits, delegating = parse_ctor_inits(toks, close + 1, v)
            if inits is not None:
                facts["oo_ctor_inits"].append([v, sorted(inits), delegating])

        # rule 2: std::hash over a pointer type / std::less<T*>
        if v in ("hash", "less", "greater") and tv(i - 1) == "::" and tv(i - 2) == "std" \
                and tv(i + 1) == "<":
            args = template_args(toks, i + 1)
            if args and arg_is_pointer(args[0]):
                facts["ptr_order"].append(
                    [t.line, f"std::{v} over a pointer type keys on object addresses"])

        # rule 4 patterns
        if v in ("rand", "srand") and tv(i + 1) == "(" and tv(i - 1) not in (".", "->", "::"):
            facts["unseeded"].append(
                [t.line, f"{v}() is banned; use common::Rng with an explicit seed"])
        if v == "random_device" and tv(i - 1) == "::" and tv(i - 2) == "std":
            facts["unseeded"].append(
                [t.line, "std::random_device is nondeterministic by design; "
                         "use a fixed seed"])
        if v in ("mt19937", "mt19937_64") and toks[i + 1 if i + 1 < n else i].kind == "id" \
                and tv(i + 2) in (";", ","):
            # The declared name rides along: a member engine seeded in every
            # constructor init list is sanctioned (common::Rng's facade).
            facts["unseeded"].append(
                [t.line, f"unseeded std::{v}; construct with an explicit seed",
                 tv(i + 1)])
        if v == "hash" and tv(i - 1) == "::" and tv(i - 2) == "std" and tv(i + 1) == "<" \
                and tv(i + 2) == "std" and tv(i + 4) == "string":
            j = skip_template(toks, i + 1)
            if tv(j) == "(" or (tv(j) == "{" and tv(j + 1) == "}" and tv(j + 2) == "("):
                facts["unseeded"].append(
                    [t.line, "branching on std::hash<std::string> is implementation-"
                             "defined; derive decisions from explicit keys"])

        # rule 2: relational comparison of pointer-typed lambda parameters
        if v == "[" :  # pragma: no cover - kind check below keeps this dead
            pass
        i += 1

    scan_pointer_comparators(toks, facts)
    scan_for_loops(toks, facts)
    return facts


def alias_head(toks, i):
    """Head type token of an alias target starting at i ('unordered_map',
    'vector', 'uint32_t', ...), or None."""
    j = i
    seen = None
    while j < len(toks) and toks[j].v not in (";", "<"):
        if toks[j].kind == "id" and toks[j].v not in ("std", "const") \
                and toks[j].v != "::":
            seen = toks[j].v
        j += 1
    return seen


def toks_is_record_intro(toks, i):
    """True when struct/class at i introduces a definition (not a fwd decl,
    variable of elaborated type, or template parameter)."""
    if i + 1 >= len(toks) or toks[i + 1].kind != "id":
        return False
    j = i + 2
    while j < len(toks) and toks[j].v in ("final",):
        j += 1
    if j < len(toks) and toks[j].v == ":":  # base clause
        while j < len(toks) and toks[j].v not in ("{", ";"):
            j += 1
    return j < len(toks) and toks[j].v == "{"


def find_record_body(toks, i):
    j = i + 2
    while j < len(toks) and toks[j].v != "{":
        if toks[j].v == ";":
            return None
        j += 1
    if j >= len(toks):
        return None
    return (j, match_forward(toks, j))


def template_args(toks, i):
    """Top-level template argument token lists for '<' at i."""
    args, cur, depth, j = [], [], 0, i
    while j < len(toks):
        v = toks[j].v
        if v == "<":
            depth += 1
            if depth > 1:
                cur.append(toks[j])
        elif v in (">", ">>"):
            depth -= 2 if v == ">>" else 1
            if depth <= 0:
                if cur:
                    args.append(cur)
                return args
            cur.append(toks[j])
        elif v == "," and depth == 1:
            args.append(cur)
            cur = []
        elif v in (";", "{"):
            return None  # was a comparison, not a template
        elif depth >= 1:
            cur.append(toks[j])
        j += 1
    return None


def arg_is_pointer(arg_toks):
    return bool(arg_toks) and arg_toks[-1].v == "*"


def parse_ctor_inits(toks, i, record_name):
    """Parses a mem-initializer list starting at token i (just past the param
    close paren). Returns (init-name set, delegating) or (None, False) when
    this is a declaration / deleted / defaulted ctor."""
    j = i
    while tv_of(toks, j) in ("noexcept", "override", "const"):
        if tv_of(toks, j) == "noexcept" and tv_of(toks, j + 1) == "(":
            j = match_forward(toks, j + 1) + 1
        else:
            j += 1
    if tv_of(toks, j) == "=":  # = default / = delete
        return None, False
    inits: set[str] = set()
    delegating = False
    if tv_of(toks, j) == ":":
        j += 1
        while j < len(toks) and toks[j].v != "{":
            if toks[j].kind == "id" and tv_of(toks, j + 1) in ("(", "{"):
                name = toks[j].v
                if name == record_name:
                    delegating = True
                else:
                    inits.add(name)
                j = match_forward(toks, j + 1) + 1
                continue
            if toks[j].kind == "id" and tv_of(toks, j + 1) == "<":
                j = skip_template(toks, j + 1)  # templated base
                continue
            j += 1
    if tv_of(toks, j) != "{":
        return None, False  # declaration only; definition lives elsewhere
    return inits, delegating


def tv_of(toks, i):
    return toks[i].v if 0 <= i < len(toks) else ""


def parse_record(toks, open_i, close_i, name, qualname):
    """Member/ctor scan of a record body (rule 3)."""
    members = []  # [name, type_head, is_pointer, has_init, line]
    ctors = []    # [[init names], delegating]
    i = open_i + 1
    while i < close_i:
        t = toks[i]
        v = t.v
        if v in ("public", "private", "protected") and tv_of(toks, i + 1) == ":":
            i += 2
            continue
        if v == ";":
            i += 1
            continue
        # nested record: handled by the outer scan; skip its body here
        if v in ("struct", "class") and toks_is_record_intro(toks, i):
            body = find_record_body(toks, i)
            i = body[1] + 1 if body else i + 1
            continue
        if v == "enum":
            j = i + 1
            while j < close_i and toks[j].v not in ("{", ";"):
                j += 1
            i = (match_forward(toks, j) if toks[j].v == "{" else j) + 1
            continue
        # constructor (possibly behind explicit/inline/constexpr qualifiers)
        j = i
        while tv_of(toks, j) in ("explicit", "inline", "constexpr"):
            j += 1
        if tv_of(toks, j) == name and tv_of(toks, j + 1) == "(":
            i = j
            v = name
        if v == name and tv_of(toks, i + 1) == "(":
            close = match_forward(toks, i + 1)
            inits, delegating = parse_ctor_inits(toks, close + 1, name)
            if inits is not None:
                ctors.append([sorted(inits), delegating])
                # skip the ctor body
                j = close + 1
                while j < close_i and toks[j].v != "{":
                    j += 1
                i = match_forward(toks, j) + 1 if j < close_i else close + 1
                continue
            i = close + 1
            continue
        # any other statement: collect to ';' skipping balanced braces;
        # classify as member variable when it has no parameter list.
        stmt, i = collect_member_stmt(toks, i, close_i)
        if stmt:
            member = classify_member(stmt)
            if member:
                members.append(member)
    return [qualname, toks[open_i].line, members, ctors]


def collect_member_stmt(toks, i, limit):
    stmt = []
    while i < limit:
        v = toks[i].v
        if v == ";":
            return stmt, i + 1
        if v == "{":
            close = match_forward(toks, i)
            # function body (a '(' appeared earlier) ends the statement; an
            # NSDMI brace-init is part of it.
            if any(s.v == "(" for s in stmt) and not (stmt and stmt[-1].v in ("=", ",")):
                return None, close + 1
            stmt.append(Tok("punct", "{...}", toks[i].line))
            i = close + 1
            continue
        if v == "(":
            close = match_forward(toks, i)
            stmt.append(Tok("punct", "(", toks[i].line))
            stmt.append(Tok("punct", ")", toks[close].line))
            i = close + 1
            continue
        if v == "[":
            i = match_forward(toks, i) + 1
            stmt.append(Tok("punct", "[]", toks[i - 1].line))
            continue
        if v == "<" and stmt and stmt[-1].kind == "id":
            j = skip_template(toks, i)
            if j > i + 1:
                stmt.append(Tok("punct", "<>", toks[i].line))
                i = j
                continue
        stmt.append(toks[i])
        i += 1
    return stmt, i


def classify_member(stmt):
    """[name, type_head, is_pointer, has_init, line] for a scalar-looking data
    member, else None."""
    vals = [s.v for s in stmt]
    if not stmt or stmt[0].kind != "id" and stmt[0].v not in ("~",):
        return None
    if vals[0] in ("using", "typedef", "friend", "template", "static",
                   "static_assert", "operator", "~", "virtual", "explicit"):
        return None
    if "operator" in vals:
        return None
    # Drop trailing ALL_CAPS(...) annotation macros (GUARDED_BY etc).
    while len(vals) >= 3 and vals[-1] == ")" and vals[-2] == "(" \
            and re.fullmatch(r"[A-Z][A-Z0-9_]*", vals[-3] or ""):
        stmt = stmt[:-3]
        vals = vals[:-3]
    if not stmt:
        return None
    # Find declarator: last id not part of the initializer.
    init_at = None
    for k, v in enumerate(vals):
        if v in ("=", "{...}"):
            init_at = k
            break
    head_part = stmt[: init_at if init_at is not None else len(stmt)]
    hp_vals = [s.v for s in head_part]
    if "(" in hp_vals:  # function declaration / member with paren-init
        # paren right after a name that follows a type = ctor-style init
        if init_at is None and hp_vals and hp_vals[-1] == ")":
            # e.g. `int x(3);` is rare in members; treat as initialized
            return None
        return None
    if ":" in hp_vals[1:]:  # bitfield — always explicit width, skip
        return None
    # declarator name = last identifier
    name_idx = None
    for k in range(len(head_part) - 1, -1, -1):
        if head_part[k].kind == "id" and head_part[k].v not in TYPE_QUALIFIERS:
            name_idx = k
            break
    if name_idx is None or name_idx == 0:
        return None
    type_toks = head_part[:name_idx]
    t_vals = [s.v for s in type_toks]
    if "&" in t_vals or "<>" in t_vals:
        return None  # references / templated types are out of scope
    is_pointer = "*" in t_vals
    head = None
    for s in type_toks:
        if s.kind == "id" and s.v not in TYPE_QUALIFIERS and s.v != "std" \
                and s.v != "::":
            head = s.v
    if head is None:
        return None
    has_init = init_at is not None
    return [stmt[name_idx].v, head, is_pointer, has_init, stmt[name_idx].line]


# --- loop analysis (rule 1) --------------------------------------------------

def scan_for_loops(toks, facts):
    n = len(toks)
    for i in range(n):
        if toks[i].kind != "id" or toks[i].v != "for" or tv_of(toks, i + 1) != "(":
            continue
        open_i = i + 1
        close_i = match_forward(toks, open_i)
        head = toks[open_i + 1 : close_i]
        body_start = close_i + 1
        if body_start >= n:
            continue
        if toks[body_start].v == "{":
            body_end = match_forward(toks, body_start)
            body = toks[body_start + 1 : body_end]
        else:
            j = body_start
            while j < n and toks[j].v != ";":
                if toks[j].v in OPEN:
                    j = match_forward(toks, j)
                j += 1
            body = toks[body_start:j]
        colon = find_range_colon(head)
        if colon is not None:
            decl, expr = head[:colon], head[colon + 1 :]
            loop_vars = range_loop_vars(decl)
            terminal, is_call = expr_terminal(expr)
            if terminal is None:
                continue
            sorted_ok = is_call and terminal in SORTED_FACTORIES
            facts["range_fors"].append(
                [toks[i].line, terminal, is_call, sorted_ok,
                 body_escapes(body, loop_vars)])
        else:
            # iterator walk:  for (auto it = X.begin(); ...)
            recv, var = iter_for_receiver(head)
            if recv:
                facts["iter_fors"].append(
                    [toks[i].line, recv, body_escapes(body, {var} if var else set())])


def find_range_colon(head):
    depth = 0
    for k, t in enumerate(head):
        v = t.v
        if v in OPEN:
            depth += 1
        elif v in CLOSE:
            depth -= 1
        elif v == ";":
            return None  # classic for
        elif v == ":" and depth == 0:
            return k
    return None


def range_loop_vars(decl):
    vals = [t.v for t in decl]
    if "[" in vals:  # structured binding
        lo = vals.index("[")
        hi = vals.index("]") if "]" in vals else len(vals)
        return {t.v for t in decl[lo + 1 : hi] if t.kind == "id"}
    for k in range(len(decl) - 1, -1, -1):
        if decl[k].kind == "id" and decl[k].v not in TYPE_QUALIFIERS:
            return {decl[k].v}
    return set()


def expr_terminal(expr):
    """(terminal-name, is_call) for a range expression."""
    t = list(expr)
    while t and t[0].v in ("*", "&"):
        t = t[1:]
    while len(t) >= 2 and t[0].v == "(" and match_forward(t, 0) == len(t) - 1:
        t = t[1:-1]
    if not t:
        return None, False
    if t[-1].v == ")":
        depth = 0
        k = len(t) - 1
        while k >= 0:
            if t[k].v == ")":
                depth += 1
            elif t[k].v == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        callee = last_chain_id(t[:k])
        return callee, True
    return last_chain_id(t), False


def iter_for_receiver(head):
    """('tasks_', 'it') for  auto it = tasks_.begin(); ...  heads."""
    var = None
    for k, t in enumerate(head):
        if t.kind == "id" and tv_of(head, k + 1) == "=" and var is None:
            var = t.v
        if t.kind == "id" and t.v in ("begin", "cbegin") and tv_of(head, k + 1) == "(" \
                and k >= 2 and head[k - 1].v in (".", "->") and head[k - 2].kind == "id":
            return head[k - 2].v, var
    return None, None


def body_escapes(body, loop_vars):
    """True when the loop body leaks iteration order: calls with effects
    outside the current element, writes whose target is not the current
    element or a body-local, streaming, or returning."""
    locals_: set[str] = set(loop_vars)
    n = len(body)
    stmt_start = True
    k = 0
    while k < n:
        t = body[k]
        v = t.v
        if v in (";", "{", "}"):
            stmt_start = True
            k += 1
            continue
        if t.kind == "id" and v in ("return", "throw", "co_return", "co_yield"):
            return True
        if v in ("<<", ">>"):
            return True
        # body-local declaration:  [const] type name =/{ ...
        if stmt_start and t.kind == "id":
            j = k
            while j < n and body[j].kind == "id" and \
                    (body[j].v in TYPE_QUALIFIERS or body[j].v in SCALAR_TYPES
                     or body[j].v == "auto" or body[j].v == "std"
                     or (j + 1 < n and body[j + 1].kind == "id")):
                if j + 1 < n and body[j + 1].v == "::":
                    j += 2
                    continue
                j += 1
            if j < n and body[j].kind == "id" and j > k and \
                    tv_of(body, j + 1) in ("=", "{", ";", ":"):
                locals_.add(body[j].v)
                k = j + 1
                stmt_start = False
                continue
        stmt_start = False
        # calls
        if t.kind == "id" and tv_of(body, k + 1) == "(" and \
                (body[k - 1].v != "::" if k > 0 else True):
            callee = v
            if callee in PURE_CALLS or callee in ("if", "while", "switch", "for",
                                                  "sizeof", "assert", "decltype",
                                                  "alignof"):
                k += 1
                continue
            if k > 0 and body[k - 1].v in (".", "->"):
                root = chain_root(body, k)
                if root in locals_ or callee in READONLY_METHODS:
                    k += 1
                    continue
                return True
            if callee in READONLY_METHODS:
                k += 1
                continue
            return True
        # assignments / increments
        if v in ASSIGN_OPS or v in ("++", "--"):
            if v in ("++", "--") and k + 1 < n and body[k + 1].kind == "id":
                root = chain_root(body, k + 1 + chain_extent(body, k + 1))
            else:
                root = chain_root(body, k - 1)
            if root is not None and root not in locals_:
                return True
        k += 1
    return False


def chain_extent(body, k):
    j = k
    while j + 1 < len(body) and body[j + 1].v in (".", "->", "::", "["):
        if body[j + 1].v == "[":
            j = match_forward(body, j + 1)
        else:
            j += 2
    return j - k


def scan_pointer_comparators(toks, facts):
    """Lambda comparators that order by raw pointer value (rule 2)."""
    n = len(toks)
    for i in range(n - 1):
        if toks[i].v != "[" or tv_of(toks, i + 1) not in ("]", "&", "=") and \
                toks[i + 1].kind != "id":
            continue
        close = match_forward(toks, i)
        if tv_of(toks, close + 1) != "(":
            continue
        pclose = match_forward(toks, close + 1)
        params = toks[close + 2 : pclose]
        ptr_params = pointer_param_names(params)
        if len(ptr_params) < 2:
            continue
        j = pclose + 1
        while j < n and toks[j].v not in ("{", ";"):
            j += 1
        if j >= n or toks[j].v != "{":
            continue
        bend = match_forward(toks, j)
        body = toks[j + 1 : bend]
        for k in range(1, len(body) - 1):
            if body[k].v in ("<", ">", "<=", ">=") and \
                    body[k - 1].kind == "id" and body[k + 1].kind == "id" and \
                    body[k - 1].v in ptr_params and body[k + 1].v in ptr_params:
                facts["ptr_order"].append(
                    [body[k].line,
                     "comparator orders by raw pointer value (address order); "
                     "compare a stable id instead"])
                break


def pointer_param_names(params):
    names, cur = set(), []
    groups = []
    depth = 0
    for t in params:
        if t.v in OPEN or t.v == "<":
            depth += 1
        elif t.v in CLOSE or t.v == ">":
            depth -= 1
        if t.v == "," and depth == 0:
            groups.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        groups.append(cur)
    for g in groups:
        has_star = any(t.v == "*" for t in g)
        if has_star and g and g[-1].kind == "id":
            names.add(g[-1].v)
    return names


# --- assembly & evaluation ---------------------------------------------------

class Findings:
    def __init__(self):
        self.items: list[str] = []
        self.by_rule = collections.Counter({r: 0 for r in RULE_NAMES})
        self._seen = set()

    def add(self, rel, line, rule, message):
        key = (rel, line, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.items.append(f"{rel}:{line}: [{rule}] {message}")
        self.by_rule[rule] += 1


def escape_covers(facts, line, name):
    esc = facts["escapes"]
    comment_only = set(facts["comment_only"])
    if name in esc.get(str(line), ()):
        return True
    prev = line - 1
    return prev in comment_only and name in esc.get(str(prev), ())


def det_files(root):
    out = []
    for d in DETERMINISTIC_DIRS:
        base = os.path.join(root, d)
        for dirpath, _dirs, files in os.walk(base):
            for f in sorted(files):
                if f.endswith(SOURCE_EXTS):
                    out.append(os.path.join(dirpath, f))
    return sorted(out)


def resolve_include(root, inc):
    cand = os.path.join(root, "src", inc)
    return cand if os.path.isfile(cand) else None


def include_closure(root, path, all_facts):
    seen, queue = set(), [path]
    while queue:
        p = queue.pop()
        if p in seen or p not in all_facts:
            continue
        seen.add(p)
        for inc in all_facts[p]["includes"]:
            r = resolve_include(root, inc)
            if r and r not in seen:
                queue.append(r)
    return seen


def build_env(root, path, all_facts):
    """name -> set of container kinds, merged over the include closure, with
    same-file declarations taking precedence."""
    closure = include_closure(root, path, all_facts)
    alias_kind = {}
    for p in closure:
        for name, head in all_facts[p]["aliases"]:
            k = container_kind(head)
            if k:
                alias_kind[name] = k
    per_file: dict[str, dict[str, set]] = {}
    for p in closure:
        env = per_file.setdefault(p, {})
        for name, kind, _line in all_facts[p]["decls"]:
            if kind.startswith("alias:"):
                kind = alias_kind.get(kind[len("alias:"):])
                if kind is None:
                    continue
            env.setdefault(name, set()).add(kind)
    merged: dict[str, set] = {}
    for p in closure:
        for name, kinds in per_file[p].items():
            merged.setdefault(name, set()).update(kinds)
    # auto-inits: one propagation round
    for p in closure:
        for name, term, _line in all_facts[p]["auto_inits"]:
            kinds = merged.get(term)
            if kinds:
                merged.setdefault(name, set()).update(kinds)
                per_file[p].setdefault(name, set()).update(kinds)
    return merged, per_file.get(path, {}), alias_kind


def name_is_unordered(name, merged, local):
    kinds = local.get(name) or merged.get(name) or set()
    return kinds == {"unordered"}


def evaluate(root, roots, all_facts, findings):
    """Applies all four rules over the parsed facts."""
    global_alias = {}
    for facts in all_facts.values():
        for name, head in facts["aliases"]:
            global_alias[name] = head
    # rule 3 evidence: out-of-line ctor init lists anywhere in the closure set
    oo_inits: dict[str, list] = collections.defaultdict(list)
    ctor_inited: set[str] = set()
    for facts in all_facts.values():
        for rec, inits, delegating in facts["oo_ctor_inits"]:
            oo_inits[rec].append((set(inits), delegating))
            ctor_inited.update(inits)
        for _q, _line, _members, ctors in facts["records"]:
            for inits, _delegating in ctors:
                ctor_inited.update(inits)

    for path in roots:
        facts = all_facts[path]
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        merged, local, _aliases = build_env(root, path, all_facts)

        for line, terminal, is_call, sorted_ok, escapes in facts["range_fors"]:
            if sorted_ok or not escapes:
                continue
            if not name_is_unordered(terminal, merged, local):
                continue
            if escape_covers(facts, line, "sorted-iteration"):
                continue
            findings.add(rel, line, "unordered-iteration",
                         f"range-for over unordered container '{terminal}' escapes "
                         "values in hash order; iterate common::sorted_view, switch "
                         "to common::ordered_map, or mark the loop "
                         "`// detlint: sorted-iteration(<why>)`")
        for line, recv, escapes in facts["iter_fors"]:
            if not escapes or not name_is_unordered(recv, merged, local):
                continue
            if escape_covers(facts, line, "sorted-iteration"):
                continue
            findings.add(rel, line, "unordered-iteration",
                         f"iterator walk over unordered container '{recv}' escapes "
                         "values in hash order; collect keys via common::sorted_keys "
                         "or mark the loop `// detlint: sorted-iteration(<why>)`")

        for line, msg in facts["ptr_order"]:
            if escape_covers(facts, line, "pointer-order"):
                continue
            findings.add(rel, line, "pointer-order",
                         msg + " (or mark the line `// detlint: pointer-order(<why>)`)")

        for line, msg, *rest in facts["unseeded"]:
            if rest and rest[0] in ctor_inited:
                continue  # engine member seeded in a constructor init list
            if escape_covers(facts, line, "seeded-random"):
                continue
            findings.add(rel, line, "unseeded-random",
                         msg + " (or mark the line `// detlint: seeded-random(<why>)`)")

        for qualname, _rline, members, ctors in facts["records"]:
            bare = qualname.rsplit("::", 1)[-1]
            all_ctors = [(set(i), d) for i, d in ctors] + oo_inits.get(bare, [])
            for mname, head, is_ptr, has_init, mline in members:
                if has_init:
                    continue
                scalar = is_ptr or head in SCALAR_TYPES \
                    or global_alias.get(head) in SCALAR_TYPES
                if not scalar:
                    continue
                covered = bool(all_ctors) and all(
                    delegating or mname in inits for inits, delegating in all_ctors)
                if covered:
                    continue
                if escape_covers(facts, mline, "uninit-member"):
                    continue
                why = "no constructor initializes it" if not all_ctors else \
                    "a constructor's init list omits it"
                findings.add(rel, mline, "uninit-member",
                             f"scalar member '{qualname}::{mname}' has no default "
                             f"initializer and {why}; add an NSDMI (`= 0`) or "
                             "initialize it in every constructor (or mark the line "
                             "`// detlint: uninit-member(<why>)`)")


# --- caching / parallel drive ------------------------------------------------

def self_hash():
    with open(os.path.abspath(__file__), "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()[:16]


def content_hash(path):
    with open(path, "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


def parse_with_cache(paths, cache_path, jobs):
    cache = {}
    if cache_path and os.path.isfile(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as f:
                cache = json.load(f)
        except (OSError, ValueError):
            cache = {}
    version = self_hash()
    if cache.get("__version__") != version:
        cache = {"__version__": version}

    hashes = {p: content_hash(p) for p in paths}
    todo = [p for p in paths if cache.get(p, {}).get("hash") != hashes[p]]
    hits = len(paths) - len(todo)

    if todo:
        if jobs > 1 and len(todo) > 4:
            with multiprocessing.Pool(jobs) as pool:
                parsed = pool.map(parse_file, todo)
        else:
            parsed = [parse_file(p) for p in todo]
        for p, facts in zip(todo, parsed):
            cache[p] = {"hash": hashes[p], "facts": facts}

    if cache_path:
        # Drop entries for files that vanished so the cache cannot grow
        # without bound, then persist.
        keep = {"__version__": version}
        for p in paths:
            keep[p] = cache[p]
        tmp = cache_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(keep, f)
        os.replace(tmp, cache_path)
    return {p: cache[p]["facts"] for p in paths}, hits


def gather_files(root, build_dir):
    """Analysis roots (all deterministic-dir sources) plus the project headers
    they include. The compile database contributes TU spellings when present;
    the glob walk guarantees headers and compile-db-less fixture trees work."""
    roots = det_files(root)
    cc = find_compile_commands(build_dir) if root == REPO else None
    if cc:
        try:
            with open(cc, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.abspath(entry["file"])
                    rel = os.path.relpath(p, root).replace(os.sep, "/")
                    if rel.startswith(DETERMINISTIC_DIRS) and p not in roots \
                            and os.path.isfile(p):
                        roots.append(p)
        except (OSError, ValueError, KeyError):
            pass
    roots = sorted(set(roots))
    # transitive project includes (for type environments only)
    all_files = set(roots)
    queue = list(roots)
    inc_re = re.compile(r'#\s*include\s+"([^"]+)"')
    while queue:
        p = queue.pop()
        try:
            with open(p, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for inc in inc_re.findall(text):
            r = resolve_include(root, inc)
            if r and r not in all_files:
                all_files.add(r)
                queue.append(r)
    return roots, sorted(all_files)


def write_github_summary(findings, file_count, cache_hits):
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = ["### Detlint", "",
             f"Determinism analysis over {file_count} files "
             f"({cache_hits} cache hits).", "",
             "| rule | findings |", "| --- | ---: |"]
    for rule in RULE_NAMES:
        lines.append(f"| `{rule}` | {findings.by_rule[rule]} |")
    lines.append(f"| **total** | **{len(findings.items)}** |")
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO,
                        help="tree to analyze (default: this checkout; tests "
                             "point this at fixture trees)")
    parser.add_argument("--build-dir",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--cache", help="per-file facts cache (JSON), keyed on "
                                        "content hash + analyzer hash")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"detlint: error: --root {root} is not a directory")
        return 2

    roots, all_files = gather_files(root, args.build_dir)
    if not roots:
        print(f"detlint: no sources under {root} deterministic dirs")
        return 0
    all_facts, cache_hits = parse_with_cache(all_files, args.cache, args.jobs)

    findings = Findings()
    evaluate(root, roots, all_facts, findings)

    print(f"detlint: {len(roots)} analysis roots, {len(all_files)} files parsed "
          f"({cache_hits} cache hits): {len(findings.items)} finding(s)")
    for item in sorted(findings.items):
        print(f"  {item}")
    print("detlint: rule counts: " +
          " ".join(f"{rule}={findings.by_rule[rule]}" for rule in RULE_NAMES))
    write_github_summary(findings, len(all_files), cache_hits)
    if findings.items:
        print("detlint: FAILED")
        return 1
    print("detlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
