// harmony_report — offline trace analysis: turns an exported Chrome trace
// (harmony-sim --chrome-trace, or any Tracer::write_chrome_trace output) into
// a deterministic run report.
//
//   harmony_report TRACE.json [options]
//     --metrics FILE    fold a metrics-registry JSON snapshot into the report
//     --out DIR         write DIR/report.md and DIR/report.json
//     --json            print the JSON report to stdout instead of Markdown
//     --window SEC      bound-classification / utilization window (default 60)
//     --help            print this help and exit
//
// Without --out the Markdown report goes to stdout (or the JSON report with
// --json). Output is byte-identical across runs on the same inputs: the
// analysis is a pure function of the trace, and both writers use fixed
// formats (the golden-determinism test pins this).
//
// Offline analysis has no access to the run's ground-truth summary, so
// JCT-like quantities are derived from the trace (submit = first event,
// finish = last event) and the report labels makespan as trace-derived. For
// reports reconciled against the harness's RunSummary, use
// `harmony-sim --report DIR`, which feeds the summary in as RunTotals.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/analysis/analysis.h"
#include "obs/analysis/report.h"

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s TRACE.json [--metrics FILE] [--out DIR] [--json]\n"
               "          [--window SEC] [--help]\n",
               argv0);
}

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  print_usage(stderr, argv0);
  std::exit(2);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  std::string metrics_file;
  std::string out_dir;
  bool json_to_stdout = false;
  harmony::obs::analysis::AnalysisOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--metrics") {
      metrics_file = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--json") {
      json_to_stdout = true;
    } else if (arg == "--window") {
      options.window_sec = std::stod(next());
      if (options.window_sec <= 0.0) usage_error(argv[0], "--window must be positive");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error(argv[0], "unknown option '" + arg + "'");
    } else if (trace_file.empty()) {
      trace_file = arg;
    } else {
      usage_error(argv[0], "unexpected argument '" + arg + "'");
    }
  }
  if (trace_file.empty()) usage_error(argv[0], "missing trace file");

  std::string trace_text;
  if (!read_file(trace_file, trace_text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], trace_file.c_str());
    return 1;
  }
  std::string metrics_text;
  if (!metrics_file.empty() && !read_file(metrics_file, metrics_text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], metrics_file.c_str());
    return 1;
  }

  try {
    auto events = harmony::obs::analysis::events_from_chrome_trace(trace_text);
    const auto analysis =
        harmony::obs::analysis::analyze(std::move(events), nullptr, options);
    if (!out_dir.empty()) {
      if (!harmony::obs::analysis::write_report_files(analysis, metrics_text, out_dir)) {
        std::fprintf(stderr, "%s: cannot write report to %s\n", argv[0], out_dir.c_str());
        return 1;
      }
      std::printf("report: %zu events -> %s/report.md, %s/report.json\n",
                  analysis.event_count, out_dir.c_str(), out_dir.c_str());
    } else if (json_to_stdout) {
      harmony::obs::analysis::write_json(analysis, metrics_text, std::cout);
    } else {
      harmony::obs::analysis::write_markdown(analysis, metrics_text, std::cout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
