// harmony_sim — command-line driver for cluster-scale scheduling experiments
// and the online scheduling service (src/svc).
//
//   harmony_sim [options]
//     --policy harmony|isolated|naive   scheduling policy   (default harmony)
//     --jobs N                          jobs from the catalog (default 80)
//     --machines M                      cluster size          (default 100)
//     --arrival batch|poisson:SEC|trace:SEC   arrival process (default batch)
//     --seed S                          simulation seed       (default 1)
//
//   Service mode (open-loop continuous arrivals, incremental rescheduling,
//   admission control; deterministic report on stdout, wall-clock throughput
//   on stderr):
//     --service                         run the online service instead of a
//                                       finite workload replay
//     --duration SEC                    arrival horizon     (default 86400)
//     --arrival-rate R                  offered load, jobs/sec (default 1);
//                                       --arrival poisson:SEC|trace:SEC picks
//                                       the process shape (batch is rejected:
//                                       the service is open-loop)
//     --admission fifo|sjf              pending-queue policy  (default fifo)
//     --queue-cap N                     pending-queue capacity (default 1024)
//     --drift F                         full-reschedule drift threshold
//                                       (default 0.10)
//     --spill on|off                    data spill/reload     (default on)
//     --event-queue calendar|heap       simulator event-queue implementation
//                                       (default calendar; both bit-identical)
//     --telemetry-out FILE              live telemetry as JSON Lines, one
//                                       window per line (byte-deterministic)
//     --telemetry-interval SEC          telemetry window length in sim time
//                                       (default 60 once any telemetry flag
//                                       is given)
//     --prom-out FILE                   Prometheus text exposition of the
//                                       service series at end of run
//     --slo NAME=THRESHOLD              declare an SLO (repeatable):
//                                       queue-delay-p99, rejection-rate,
//                                       drift-escalation-rate,
//                                       sched-throughput-floor
//     --flight-recorder DIR             arm the crash flight recorder; dumps
//                                       a Chrome trace + context bundle into
//                                       DIR on CHECK failure, fatal signal,
//                                       or SLO page
//     --naive-seed S                    naive grouping shuffle seed
//     --error F                         profile error injection, e.g. 0.1
//     --timeline                        print the utilization timeline
//     --validate                        deep invariant validators at every
//                                       regroup event (diagnostics on stderr;
//                                       stdout is byte-identical to a run
//                                       without this flag)
//     --trace                           per-minute cluster snapshots (stderr)
//     --chrome-trace FILE               write a Chrome trace-event JSON file
//     --metrics FILE                    write a metrics-registry JSON snapshot
//     --report DIR                      run the trace analysis engine over the
//                                       run (implies tracing) and write
//                                       DIR/report.md + DIR/report.json,
//                                       reconciled against the run summary
//     --log-level debug|info|warn|error minimum log severity  (default warn)
//     --help                            print this help and exit
//
// Examples:
//   harmony_sim                                  # the paper's main setting
//   harmony_sim --policy isolated
//   harmony_sim --policy naive --naive-seed 3
//   harmony_sim --jobs 20 --machines 40 --arrival poisson:120 --timeline
//   harmony_sim --jobs 20 --machines 40 --chrome-trace out.json --metrics m.json
#include <csignal>  // lint: allow-signal-handler (flight-recorder crash hook)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "svc/service.h"

using namespace harmony;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--policy harmony|isolated|naive] [--jobs N] [--machines M]\n"
               "          [--arrival batch|poisson:SEC|trace:SEC] [--seed S]\n"
               "          [--spill on|off] [--naive-seed S] [--error F]\n"
               "          [--event-queue calendar|heap]\n"
               "          [--timeline] [--validate] [--trace]\n"
               "          [--chrome-trace FILE] [--metrics FILE] [--report DIR]\n"
               "          [--log-level debug|info|warn|error] [--help]\n"
               "service mode (deterministic report on stdout, wall stats on stderr):\n"
               "       %s --service [--duration SEC] [--arrival-rate JOBS_PER_SEC]\n"
               "          [--admission fifo|sjf] [--queue-cap N] [--drift F]\n"
               "          [--machines M] [--arrival poisson:SEC|trace:SEC] [--seed S]\n"
               "          [--event-queue calendar|heap] [--validate] [--metrics FILE]\n"
               "          [--telemetry-out FILE] [--telemetry-interval SEC]\n"
               "          [--prom-out FILE] [--slo NAME=THRESHOLD]...\n"
               "          [--flight-recorder DIR]\n",
               argv0, argv0);
}

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  print_usage(stderr, argv0);
  std::exit(2);
}

double parse_suffixed(const std::string& value, const std::string& prefix) {
  return std::stod(value.substr(prefix.size()));
}

// Fatal-signal hook: pull the flight recorder's handle, then re-raise with
// the default disposition so the exit status still reflects the signal. The
// dump allocates — not strictly async-signal-safe, but the process is doomed
// either way and the bundle is the whole point of the black box.
extern "C" void fatal_signal_handler(int signo) {
  obs::FlightRecorder::instance().on_fatal_signal(signo);
  std::signal(signo, SIG_DFL);  // lint: allow-signal-handler
  std::raise(signo);            // lint: allow-signal-handler
}

void install_fatal_signal_handlers() {
  for (const int signo : {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS}) {
    std::signal(signo, fatal_signal_handler);  // lint: allow-signal-handler
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  std::string policy = "harmony";
  std::string arrival = "batch";
  bool arrival_set = false;
  std::string chrome_trace_file;
  std::string metrics_file;
  std::string report_dir;
  std::size_t jobs = 80;
  bool timeline = false;

  bool service_mode = false;
  bool machines_set = false;
  svc::ServiceConfig svc_config;
  std::string telemetry_out;
  std::string prom_out;
  double telemetry_interval_sec = 0.0;
  std::vector<obs::SloSpec> slos;
  std::string flight_recorder_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--policy") {
      policy = next();
    } else if (arg == "--jobs") {
      jobs = std::stoul(next());
    } else if (arg == "--machines") {
      config.machines = std::stoul(next());
      machines_set = true;
    } else if (arg == "--arrival") {
      arrival = next();
      arrival_set = true;
    } else if (arg == "--service") {
      service_mode = true;
    } else if (arg == "--duration") {
      svc_config.duration_sec = std::stod(next());
      if (svc_config.duration_sec <= 0.0)
        usage_error(argv[0], "--duration must be positive");
    } else if (arg == "--arrival-rate") {
      const double rate = std::stod(next());
      if (rate <= 0.0) usage_error(argv[0], "--arrival-rate must be positive");
      svc_config.mean_interarrival_sec = 1.0 / rate;
    } else if (arg == "--admission") {
      const std::string name = next();
      const auto policy = svc::parse_admission_policy(name);
      if (!policy) usage_error(argv[0], "unknown admission policy '" + name + "'");
      svc_config.admission = *policy;
    } else if (arg == "--queue-cap") {
      svc_config.queue_capacity = std::stoul(next());
    } else if (arg == "--drift") {
      svc_config.incremental.drift_threshold = std::stod(next());
      if (svc_config.incremental.drift_threshold <= 0.0)
        usage_error(argv[0], "--drift must be positive");
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--naive-seed") {
      config.naive_grouping_seed = std::stoull(next());
    } else if (arg == "--spill") {
      config.spill_enabled = next() == "on";
    } else if (arg == "--event-queue") {
      const std::string kind = next();
      if (kind == "calendar") {
        config.event_queue = sim::EventQueueKind::kCalendar;
      } else if (kind == "heap") {
        config.event_queue = sim::EventQueueKind::kBinaryHeap;
      } else {
        usage_error(argv[0], "unknown event queue '" + kind + "'");
      }
    } else if (arg == "--error") {
      config.model_error_injection = std::stod(next());
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--validate") {
      config.validate = true;
    } else if (arg == "--trace") {
      config.debug_trace = true;
    } else if (arg == "--chrome-trace") {
      chrome_trace_file = next();
    } else if (arg == "--telemetry-out") {
      telemetry_out = next();
    } else if (arg == "--telemetry-interval") {
      telemetry_interval_sec = std::stod(next());
      if (telemetry_interval_sec <= 0.0)
        usage_error(argv[0], "--telemetry-interval must be positive");
    } else if (arg == "--prom-out") {
      prom_out = next();
    } else if (arg == "--slo") {
      obs::SloSpec spec;
      std::string error;
      if (!obs::parse_slo(next(), spec, error)) usage_error(argv[0], error);
      slos.push_back(std::move(spec));
    } else if (arg == "--flight-recorder") {
      flight_recorder_dir = next();
    } else if (arg == "--metrics") {
      metrics_file = next();
    } else if (arg == "--report") {
      report_dir = next();
    } else if (arg == "--log-level") {
      const std::string level = next();
      if (level == "debug") {
        log::set_level(log::Level::kDebug);
      } else if (level == "info") {
        log::set_level(log::Level::kInfo);
      } else if (level == "warn") {
        log::set_level(log::Level::kWarn);
      } else if (level == "error") {
        log::set_level(log::Level::kError);
      } else {
        usage_error(argv[0], "unknown log level '" + level + "'");
      }
    } else {
      usage_error(argv[0], "unknown option '" + arg + "'");
    }
  }

  if (!chrome_trace_file.empty() || !report_dir.empty())
    obs::Tracer::instance().set_enabled(true);

  // The flight recorder works in any mode: CHECK failures and fatal signals
  // dump regardless of whether the service is driving telemetry ticks.
  if (!flight_recorder_dir.empty()) {
    obs::FlightRecorder::instance().arm(flight_recorder_dir);
    install_fatal_signal_handlers();
  }

  if (!service_mode && (!telemetry_out.empty() || !prom_out.empty() || !slos.empty() ||
                        telemetry_interval_sec > 0.0))
    usage_error(argv[0],
                "--telemetry-out/--telemetry-interval/--prom-out/--slo require --service");

  if (service_mode) {
    if (arrival_set) {
      if (arrival.rfind("poisson:", 0) == 0) {
        svc_config.arrival_kind = "poisson";
        svc_config.mean_interarrival_sec = parse_suffixed(arrival, "poisson:");
      } else if (arrival.rfind("trace:", 0) == 0) {
        svc_config.arrival_kind = "trace";
        svc_config.mean_interarrival_sec = parse_suffixed(arrival, "trace:");
      } else if (arrival == "batch") {
        usage_error(argv[0],
                    "arrival process 'batch' is not open-loop; service mode "
                    "needs poisson:SEC or trace:SEC");
      } else {
        usage_error(argv[0], "unknown arrival process '" + arrival + "'");
      }
    }
    if (machines_set) svc_config.machines = config.machines;
    svc_config.seed = config.seed;
    svc_config.event_queue = config.event_queue;
    if (config.validate) svc_config.validate_every_events = 256;
    // Keep the equivalence validator meaningful when --drift is raised above
    // the default slack (the Service constructor requires slack > threshold).
    if (svc_config.equivalence_slack <= svc_config.incremental.drift_threshold)
      svc_config.equivalence_slack = svc_config.incremental.drift_threshold + 0.25;

    // Any telemetry request implies ticking; the default cadence is one
    // window per simulated minute.
    svc_config.telemetry_out = telemetry_out;
    svc_config.prom_out = prom_out;
    svc_config.slos = slos;
    svc_config.telemetry_interval_sec = telemetry_interval_sec;
    if (svc_config.telemetry_interval_sec == 0.0 &&
        (!telemetry_out.empty() || !prom_out.empty() || !slos.empty()))
      svc_config.telemetry_interval_sec = 60.0;

    std::printf("service machines=%zu duration=%.0fs arrival=%s mean=%.3fs "
                "admission=%s queue-cap=%zu drift=%.2f seed=%llu\n\n",
                svc_config.machines, svc_config.duration_sec,
                svc_config.arrival_kind.c_str(), svc_config.mean_interarrival_sec,
                svc::to_string(svc_config.admission), svc_config.queue_capacity,
                svc_config.incremental.drift_threshold,
                static_cast<unsigned long long>(svc_config.seed));

    svc::Service service(svc_config, exp::make_catalog());
    const auto summary = service.run();
    std::fputs(summary.report().c_str(), stdout);

    // Wall-clock block on stderr: nondeterministic, kept out of the golden
    // stdout surface (CI smokes diff two same-seed runs byte-for-byte).
    std::fprintf(stderr,
                 "wall %.3f s | %.0f scheduling events/s | decision latency "
                 "mean %.1f us p99 %.1f us\n",
                 summary.wall_seconds, summary.events_per_wall_sec,
                 summary.decision_latency_mean_us, summary.decision_latency_p99_us);
    if (svc_config.validate_every_events != 0)
      std::fprintf(stderr, "validation: %zu passes, all invariants clean\n",
                   summary.validations_run);

    if (!metrics_file.empty()) {
      if (!obs::MetricsRegistry::instance().write_json_file(metrics_file)) {
        std::fprintf(stderr, "%s: cannot write metrics to %s\n", argv[0],
                     metrics_file.c_str());
        return 1;
      }
    }
    return 0;
  }

  if (policy == "isolated") {
    const auto seed = config.seed;
    const auto machines = config.machines;
    const auto err = config.model_error_injection;
    const auto trace = config.debug_trace;
    const auto validate = config.validate;
    const auto queue = config.event_queue;
    config = exp::ClusterSimConfig::isolated();
    config.seed = seed;
    config.machines = machines;
    config.model_error_injection = err;
    config.debug_trace = trace;
    config.validate = validate;
    config.event_queue = queue;
  } else if (policy == "naive") {
    const auto seed = config.seed;
    const auto machines = config.machines;
    const auto gseed = config.naive_grouping_seed;
    const auto trace = config.debug_trace;
    const auto validate = config.validate;
    const auto queue = config.event_queue;
    config = exp::ClusterSimConfig::naive(gseed == 0 ? 1 : gseed);
    config.seed = seed;
    config.machines = machines;
    config.debug_trace = trace;
    config.validate = validate;
    config.event_queue = queue;
  } else if (policy != "harmony") {
    usage_error(argv[0], "unknown policy '" + policy + "'");
  }

  auto catalog = exp::make_catalog();
  if (jobs < catalog.size()) catalog.resize(jobs);
  while (catalog.size() < jobs) {
    auto extra = catalog[catalog.size() % 80];
    catalog.push_back(extra);
  }

  std::vector<double> arrivals;
  if (arrival == "batch") {
    arrivals = exp::batch_arrivals(catalog.size());
  } else if (arrival.rfind("poisson:", 0) == 0) {
    arrivals = exp::poisson_arrivals(catalog.size(), parse_suffixed(arrival, "poisson:"),
                                     config.seed);
  } else if (arrival.rfind("trace:", 0) == 0) {
    arrivals =
        exp::trace_arrivals(catalog.size(), parse_suffixed(arrival, "trace:"), config.seed);
  } else {
    usage_error(argv[0], "unknown arrival process '" + arrival + "'");
  }

  std::printf("policy=%s jobs=%zu machines=%zu arrival=%s spill=%s\n", policy.c_str(),
              catalog.size(), config.machines, arrival.c_str(),
              config.spill_enabled ? "on" : "off");

  exp::ClusterSim sim(config, catalog, arrivals);
  const auto summary = sim.run();

  // stderr, so --validate leaves stdout byte-identical (golden determinism).
  if (config.validate)
    std::fprintf(stderr, "validation: %zu passes, all invariants clean\n",
                 sim.validations_run());

  std::printf("\nfinished %zu jobs\n", summary.jobs.size());
  std::printf("makespan            %10.2f h\n", summary.makespan / 3600.0);
  std::printf("mean JCT            %10.2f h\n", summary.mean_jct() / 3600.0);
  std::printf("avg CPU utilization %10.1f %%\n", 100.0 * summary.avg_util.cpu);
  std::printf("avg net utilization %10.1f %%\n", 100.0 * summary.avg_util.net);
  std::printf("concurrent jobs     %10.1f  in %.1f groups\n", sim.avg_concurrent_jobs(),
              sim.avg_concurrent_groups());
  std::printf("regroup events      %10zu\n", summary.regroup_events);
  std::printf("migration pauses    %10.1f min total\n",
              summary.migration_overhead_sec / 60.0);
  std::printf("GC time fraction    %10.2f %%\n", 100.0 * summary.gc_time_fraction);
  std::printf("OOM events          %10zu\n", summary.oom_events);
  std::printf("scheduler calls     %10zu  (%.1f ms wall)\n", sim.sched_invocations(),
              1000.0 * sim.total_sched_seconds());
  const auto alpha = sim.alpha_stats();
  if (config.spill_enabled)
    std::printf("alpha (disk ratio)  mean %.2f  min %.2f  max %.2f\n", alpha.mean, alpha.min,
                alpha.max);

  if (timeline) {
    std::printf("\ntime(s)\tcpu\tnet\n%s", sim.timeline().tsv(40).c_str());
  }

  if (!chrome_trace_file.empty()) {
    if (!obs::Tracer::instance().write_chrome_trace_file(chrome_trace_file)) {
      std::fprintf(stderr, "%s: cannot write trace to %s\n", argv[0],
                   chrome_trace_file.c_str());
      return 1;
    }
    std::printf("chrome trace        %zu events -> %s\n", obs::Tracer::instance().size(),
                chrome_trace_file.c_str());
  }
  if (!metrics_file.empty()) {
    if (!obs::MetricsRegistry::instance().write_json_file(metrics_file)) {
      std::fprintf(stderr, "%s: cannot write metrics to %s\n", argv[0],
                   metrics_file.c_str());
      return 1;
    }
    std::printf("metrics snapshot    -> %s\n", metrics_file.c_str());
  }
  if (!report_dir.empty()) {
    // The trace carries what happened; the summary carries the ground-truth
    // totals the analysis reconciles against (makespan, per-job JCTs).
    obs::analysis::RunTotals totals;
    totals.makespan_sec = summary.makespan;
    totals.jobs.reserve(summary.jobs.size());
    for (const auto& outcome : summary.jobs)
      totals.jobs.push_back(obs::analysis::RunTotals::JobOutcome{
          static_cast<std::uint32_t>(outcome.job), outcome.submit_time,
          outcome.finish_time});
    const auto analysis =
        obs::analysis::analyze(obs::Tracer::instance().snapshot(), &totals);
    if (!obs::analysis::write_report_files(
            analysis, obs::MetricsRegistry::instance().snapshot_json(), report_dir)) {
      std::fprintf(stderr, "%s: cannot write report to %s\n", argv[0], report_dir.c_str());
      return 1;
    }
    std::printf("run report          %zu events -> %s/report.md\n", analysis.event_count,
                report_dir.c_str());
  }
  return 0;
}
