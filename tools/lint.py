#!/usr/bin/env python3
"""Project lint pass: Harmony-specific rules plus an optional clang-tidy run.

Project rules (always run, no dependencies beyond the stdlib):

  nondeterminism   The simulator and scheduler must be bit-reproducible, so
                   `rand()`, `srand()`, `time(...)`-seeding, std::random_device,
                   and unseeded std::mt19937 engines are banned in the
                   deterministic directories (src/sim, src/harmony, src/exp,
                   src/baselines, src/common). Randomness flows through
                   common::Rng with an explicit seed. In src/sim, src/harmony,
                   src/exp and src/baselines the wall clocks
                   (std::chrono::system_clock / steady_clock /
                   high_resolution_clock) are banned too — wall-clock reads
                   are as reproducibility-hostile as time(NULL) seeding, and
                   only the obs wall-clock domain (src/obs, src/common
                   logging) should touch them. Escape hatch for legitimate
                   wall-time measurement: `// lint: allow-nondeterminism`.
  naked-new        No naked `new` / `delete`: ownership lives in containers and
                   smart pointers. The two observability leaky singletons are
                   exempted with a `// lint: allow-naked-new` marker.
  header-hygiene   Every header starts with `#pragma once`; headers never say
                   `using namespace` at file scope; no `#include "../..."`
                   parent-relative includes anywhere (include paths are rooted
                   at src/).
  lock-discipline  All locking goes through the capability-annotated wrappers
                   in src/common/sync.h (common::Mutex / MutexLock / CondVar),
                   so clang Thread Safety Analysis sees every acquisition.
                   Raw std::mutex, std::lock_guard, std::unique_lock,
                   std::scoped_lock, std::condition_variable and their
                   <mutex>/<condition_variable>/<shared_mutex> includes are
                   banned outside sync.h itself. Escape hatch:
                   `// lint: allow-raw-mutex` with a justification.
  layering         src/ modules must respect the dependency DAG below
                   (ALLOWED_DEPS): e.g. src/common depends on nothing,
                   src/obs only on common, and nothing outside src/exp may
                   include src/exp or src/obs/analysis. Enforced by parsing
                   `#include "..."` lines; tools/tests are exempt (they may
                   reach any module).
  event-payload    DES event callbacks live in the EventArena as SmallFn
                   payloads (src/sim/small_fn.h); a std::function in the sim
                   or exp layer reintroduces the per-event heap allocation the
                   arena exists to remove, so naming std::function (or
                   including <functional>) there is banned. Escape hatch for
                   genuinely cold paths: `// lint: allow-std-function` with a
                   justification.
  read-only-analysis
                   src/obs/analysis is a pure interpretation layer: it derives
                   reports from trace/metrics snapshots and must never touch
                   the live observability state. Referencing the Tracer or
                   MetricsRegistry singletons (or their mutators) from
                   analysis code is banned, so running an analysis can never
                   perturb the measurement it analyzes.
  detlint-escape   Hygiene for tools/detlint.py escape comments: every
                   `// detlint: <name>(<reason>)` in the deterministic
                   directories must use a known escape name (the canonical
                   list lives in tools/detlint.py) and carry a non-empty
                   reason — a bare or empty escape would not suppress the
                   detlint finding anyway, so it is flagged here where the
                   typo is visible. Mirrors the allow-raw-mutex convention.

clang-tidy (best effort): when a compile_commands.json is available (pass
--build-dir, or let the script probe build*/), and a clang-tidy binary exists,
the checks from .clang-tidy run over the project sources. Missing clang-tidy
degrades to a note, not a failure, so the script works in minimal containers.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions), a per-rule finding-count
table is appended to the job summary so new rules are visible in PR checks.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose code must be deterministic (simulation + scheduling core).
DETERMINISTIC_DIRS = ("src/sim", "src/harmony", "src/exp", "src/baselines", "src/common",
                      "src/svc")
# Directories where even reading a wall clock is banned (src/common is spared:
# logging timestamps live there, and they never feed back into simulation).
# src/svc measures decision latency off a wall clock, but only at the one
# marked choke point (its report never feeds simulated time). The live
# telemetry layer (timeseries/slo/flight_recorder) is sim-clocked by design:
# every window and alert timestamp comes from the caller, so the byte-
# deterministic JSONL contract can't be broken by a stray clock read. The
# tracer's wall domain (src/obs/trace.*) stays exempt.
CLOCK_BANNED_DIRS = ("src/sim", "src/harmony", "src/exp", "src/baselines", "src/svc",
                     "src/obs/timeseries", "src/obs/slo", "src/obs/flight_recorder")
# All directories subject to the generic rules.
SOURCE_DIRS = ("src", "tools", "tests")
SOURCE_EXTS = (".h", ".cpp")

# The one file allowed to name std:: synchronization primitives: it wraps them.
SYNC_HEADER = "src/common/sync.h"

ALLOW_NAKED_NEW = "lint: allow-naked-new"
ALLOW_NONDET = "lint: allow-nondeterminism"
ALLOW_RAW_MUTEX = "lint: allow-raw-mutex"
ALLOW_STD_FUNCTION = "lint: allow-std-function"
ALLOW_SIGNAL = "lint: allow-signal-handler"

# Directories where event payloads are hot: std::function's type-erased heap
# state is banned in favor of sim::SmallFn / the EventArena.
EVENT_PAYLOAD_DIRS = ("src/sim", "src/exp")

RULE_NAMES = ("nondeterminism", "naked-new", "header-hygiene", "lock-discipline",
              "layering", "read-only-analysis", "event-payload", "detlint-escape",
              "signal-handling")

# Signal handling is process-global state: one stray handler can shadow the
# flight recorder's crash hook or swallow a CI-visible abort. The APIs are
# confined to the flight-recorder dump path; anywhere else needs the marked
# escape with a justification (tools/harmony_sim.cpp installs the handlers).
SIGNAL_PATTERNS = [
    (re.compile(r"(?<![\w:.])(?:std::)?(?:signal|raise|sigaction)\s*\("),
     "signal-handling API outside the flight-recorder dump path"),
    (re.compile(r"#\s*include\s*<(?:csignal|signal\.h)>"),
     "<csignal>/<signal.h> outside the flight-recorder dump path"),
]
SIGNAL_EXEMPT_FILES = ("src/obs/flight_recorder.h", "src/obs/flight_recorder.cpp")

# Canonical escape names come from tools/detlint.py (one per rule family).
# detlint imports find_compile_commands from this module, so when *this*
# module loads inside that import, detlint is still mid-initialization and
# the names may not exist yet — fall back to a synced literal copy.
try:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from detlint import ESCAPE_NAMES as DETLINT_ESCAPE_NAMES
except ImportError:  # pragma: no cover - circular-import fallback
    DETLINT_ESCAPE_NAMES = ("sorted-iteration", "pointer-order",
                            "uninit-member", "seeded-random")
DETLINT_ESCAPE_RE = re.compile(r"//\s*detlint:\s*([A-Za-z0-9_-]+)\s*(?:\(([^)]*)\))?")

NONDET_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() is banned; use common::Rng with an explicit seed"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "wall-clock seeding is banned; seeds must be explicit"),
    (re.compile(r"std::random_device"), "std::random_device breaks reproducibility; use a fixed seed"),
    (re.compile(r"std::mt19937(?:_64)?\s+\w+\s*;"), "unseeded std::mt19937 engine; construct with an explicit seed"),
]

# Matches the wall-clock types themselves (not just ::now() calls) so that
# `using Clock = std::chrono::steady_clock;` aliases are caught at the one
# choke point where the marker + justification belongs.
CLOCK_PATTERN = re.compile(r"\b(?:std::chrono::)?(?:system_clock|steady_clock|high_resolution_clock)\b")

RAW_SYNC_PATTERNS = [
    (re.compile(r"std::(?:recursive_|timed_|shared_)?mutex\b"),
     "raw std::mutex; use common::Mutex from common/sync.h"),
    (re.compile(r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw std:: lock holder; use common::MutexLock from common/sync.h"),
    (re.compile(r"std::condition_variable(?:_any)?\b"),
     "raw std::condition_variable; use common::CondVar from common/sync.h"),
    (re.compile(r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"),
     "include common/sync.h instead of the raw <mutex>/<condition_variable> headers"),
]

# --- layering: the module dependency DAG ------------------------------------
# Key: module (directory under src/, with obs/analysis split out). Value: the
# modules its files may #include, besides itself. Keep edges pointing DOWN the
# stack; in particular nothing outside exp-level code may include src/exp, and
# only tools/tests/bench may consume src/obs/analysis. Extending the table is
# the intended way to admit a genuinely new dependency — do it consciously.
ALLOWED_DEPS = {
    "common": set(),
    "ml": {"common"},
    "obs": {"common"},
    "check": {"common", "obs"},
    "cluster": {"common"},
    "sim": {"common", "check", "obs"},
    "ps": {"common", "check", "ml", "obs"},
    "harmony": {"common", "check", "cluster", "ml", "obs", "ps"},
    "baselines": {"common", "check", "cluster", "ml", "obs", "ps", "harmony"},
    "obs/analysis": {"common", "obs"},
    "exp": {"common", "check", "cluster", "ml", "obs", "sim", "ps", "harmony", "baselines"},
    "svc": {"common", "check", "cluster", "ml", "obs", "sim", "ps", "harmony", "baselines",
            "exp"},
}

INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


def module_of(src_rel_path: str) -> str:
    """Maps a src/-rooted path ("obs/analysis/report.h") to its module."""
    if src_rel_path.startswith("obs/analysis/") or src_rel_path == "obs/analysis":
        return "obs/analysis"
    return src_rel_path.split("/", 1)[0]


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals.

    Good enough for line-oriented lint rules; block comments are handled by
    the caller tracking state across lines.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def project_files(root: str):
    for top in SOURCE_DIRS:
        subdir = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(subdir):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


class Findings:
    def __init__(self):
        self.items: list[str] = []
        self.by_rule = collections.Counter({rule: 0 for rule in RULE_NAMES})

    def add(self, root: str, path: str, line_no: int, rule: str, message: str):
        rel = os.path.relpath(path, root)
        self.items.append(f"{rel}:{line_no}: [{rule}] {message}")
        self.by_rule[rule] += 1


def lint_file(root: str, path: str, findings: Findings):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    is_header = path.endswith(".h")
    in_deterministic = rel.startswith(DETERMINISTIC_DIRS) or rel.startswith("tools")
    clock_banned = rel.startswith(CLOCK_BANNED_DIRS)
    check_locks = rel != SYNC_HEADER
    in_src = rel.startswith("src/")
    file_module = module_of(rel[len("src/"):]) if in_src else None
    analysis_dir = rel.startswith("src/obs/analysis")
    analysis_banned = re.compile(r"Tracer\s*::|MetricsRegistry|set_enabled\s*\(")

    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    in_block_comment = False
    saw_pragma_once = False
    for line_no, raw in enumerate(raw_lines, start=1):
        # Track /* ... */ state so commented-out code is never flagged.
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2 :]

        # Escape comments are comment-only content, so this rule must run
        # before the blank-code fast path below skips the line.
        if in_deterministic:
            for m in DETLINT_ESCAPE_RE.finditer(line):
                name, reason = m.group(1), m.group(2)
                if name not in DETLINT_ESCAPE_NAMES:
                    findings.add(root, path, line_no, "detlint-escape",
                                 f"unknown detlint escape '{name}'; known names: "
                                 + ", ".join(DETLINT_ESCAPE_NAMES))
                elif reason is None or not reason.strip():
                    findings.add(root, path, line_no, "detlint-escape",
                                 f"detlint escape '{name}' must carry a non-empty "
                                 f"reason: `// detlint: {name}(<why>)`")

        code = strip_comments_and_strings(line)
        if not code.strip():
            if "#pragma once" in raw:
                saw_pragma_once = True
            continue

        if "#pragma once" in code:
            saw_pragma_once = True

        # Include-path rules match against `line` (pre string-stripping): the
        # path itself is a string literal and would otherwise be blanked.
        if re.search(r'#\s*include\s+"\.\./', line):
            findings.add(root, path, line_no, "header-hygiene",
                         'parent-relative #include "../..."; include paths are rooted at src/')

        if is_header and re.match(r"^\s*using\s+namespace\s+\w", code):
            findings.add(root, path, line_no, "header-hygiene",
                         "`using namespace` in a header leaks into every includer")

        if ALLOW_NAKED_NEW not in raw:
            if re.search(r"(?<![\w.])new\s+[A-Za-z_(]", code) or \
               re.search(r"(?<![\w.])delete(\s*\[\s*\])?\s+[A-Za-z_*(]", code):
                findings.add(root, path, line_no, "naked-new",
                             "naked new/delete; use containers or smart pointers"
                             f" (or mark the line `// {ALLOW_NAKED_NEW}`)")

        if in_deterministic and ALLOW_NONDET not in raw:
            for pattern, message in NONDET_PATTERNS:
                if pattern.search(code):
                    findings.add(root, path, line_no, "nondeterminism", message)

        if clock_banned and ALLOW_NONDET not in raw and CLOCK_PATTERN.search(code):
            findings.add(root, path, line_no, "nondeterminism",
                         "wall-clock type in deterministic code; only the obs "
                         "wall-clock domain reads real time (or mark the line "
                         f"`// {ALLOW_NONDET}` with a justification)")

        if rel.startswith(EVENT_PAYLOAD_DIRS) and ALLOW_STD_FUNCTION not in raw:
            if re.search(r"std::function\b", code) or \
               re.search(r"#\s*include\s*<functional>", line):
                findings.add(root, path, line_no, "event-payload",
                             "std::function heap-allocates per event; use sim::SmallFn "
                             "or an EventArena payload (or mark the line "
                             f"`// {ALLOW_STD_FUNCTION}` with a justification)")

        if check_locks and ALLOW_RAW_MUTEX not in raw:
            for pattern, message in RAW_SYNC_PATTERNS:
                if pattern.search(code):
                    findings.add(root, path, line_no, "lock-discipline",
                                 f"{message} (or mark the line `// {ALLOW_RAW_MUTEX}`)")

        if rel not in SIGNAL_EXEMPT_FILES and ALLOW_SIGNAL not in raw:
            for pattern, message in SIGNAL_PATTERNS:
                if pattern.search(code):
                    findings.add(root, path, line_no, "signal-handling",
                                 f"{message}; route crash capture through "
                                 "obs::FlightRecorder (or mark the line "
                                 f"`// {ALLOW_SIGNAL}` with a justification)")
                    break

        if in_src:
            m = INCLUDE_RE.search(line)
            if m:
                dep_module = module_of(m.group(1))
                if dep_module != file_module:
                    allowed = ALLOWED_DEPS.get(file_module)
                    if allowed is None:
                        findings.add(root, path, line_no, "layering",
                                     f"module '{file_module}' is not in the layering "
                                     "table; register it in ALLOWED_DEPS (tools/lint.py)")
                    elif dep_module not in allowed:
                        findings.add(root, path, line_no, "layering",
                                     f"forbidden dependency {file_module} -> {dep_module}; "
                                     "the module DAG (ALLOWED_DEPS in tools/lint.py) "
                                     "does not have this edge")

        if analysis_dir and analysis_banned.search(code):
            findings.add(root, path, line_no, "read-only-analysis",
                         "analysis code must not touch the live Tracer/"
                         "MetricsRegistry; it only consumes snapshots")

    if is_header and not saw_pragma_once:
        findings.add(root, path, 1, "header-hygiene", "header is missing #pragma once")


def find_compile_commands(build_dir: str | None) -> str | None:
    candidates = [build_dir] if build_dir else ["build", "build-asan", "build-tsan"]
    for cand in candidates:
        if not cand:
            continue
        path = os.path.join(REPO, cand, "compile_commands.json") if not os.path.isabs(cand) \
            else os.path.join(cand, "compile_commands.json")
        if os.path.isfile(path):
            return path
    return None


def run_clang_tidy(compile_commands: str, jobs: int) -> int:
    """Runs clang-tidy over every project .cpp in the compilation database.

    Returns the number of files with findings.
    """
    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("lint: note: clang-tidy not found on PATH; skipping the clang-tidy pass")
        return 0
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    files = sorted({
        e["file"] for e in entries
        if e["file"].startswith(os.path.join(REPO, "src") + os.sep)
        or e["file"].startswith(os.path.join(REPO, "tools") + os.sep)
    })
    if not files:
        print("lint: note: no project sources in the compilation database")
        return 0
    build_path = os.path.dirname(compile_commands)
    print(f"lint: clang-tidy ({tidy}) over {len(files)} files ...")
    failed = 0
    # Batch to keep process count sane without pulling in run-clang-tidy.
    batch = max(1, len(files) // max(jobs, 1) + 1)
    procs = []
    for i in range(0, len(files), batch):
        procs.append(subprocess.Popen(
            [tidy, "-p", build_path, "--quiet", *files[i : i + batch]],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True))
    for proc in procs:
        out, _ = proc.communicate()
        if proc.returncode != 0 or "warning:" in out or "error:" in out:
            failed += 1
            sys.stdout.write(out)
    return failed


def write_github_summary(findings: Findings, file_count: int):
    """Appends a per-rule finding table to the GitHub Actions job summary."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = ["### Lint", "", f"Project rules over {file_count} files.", "",
             "| rule | findings |", "| --- | ---: |"]
    for rule in RULE_NAMES:
        lines.append(f"| `{rule}` | {findings.by_rule[rule]} |")
    lines.append(f"| **total** | **{len(findings.items)}** |")
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", help="build tree holding compile_commands.json")
    parser.add_argument("--no-clang-tidy", action="store_true",
                        help="run only the project rules")
    parser.add_argument("--root", default=REPO,
                        help="repo root to lint (default: this checkout; the "
                             "lint self-test points this at fixture trees)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"lint: error: --root {root} is not a directory")
        return 2

    findings = Findings()
    count = 0
    for path in project_files(root):
        count += 1
        lint_file(root, path, findings)
    print(f"lint: project rules over {count} files: {len(findings.items)} finding(s)")
    for item in findings.items:
        print(f"  {item}")
    print("lint: rule counts: " +
          " ".join(f"{rule}={findings.by_rule[rule]}" for rule in RULE_NAMES))
    write_github_summary(findings, count)

    tidy_failures = 0
    if not args.no_clang_tidy:
        compile_commands = find_compile_commands(args.build_dir)
        if compile_commands:
            tidy_failures = run_clang_tidy(compile_commands, args.jobs)
        else:
            print("lint: note: no compile_commands.json found "
                  "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); "
                  "skipping the clang-tidy pass")

    if findings.items or tidy_failures:
        print("lint: FAILED")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
