#!/usr/bin/env python3
"""Project lint pass: Harmony-specific rules plus an optional clang-tidy run.

Project rules (always run, no dependencies beyond the stdlib):

  nondeterminism   The simulator and scheduler must be bit-reproducible, so
                   `rand()`, `srand()`, `time(...)`-seeding, std::random_device,
                   and unseeded std::mt19937 engines are banned in the
                   deterministic directories (src/sim, src/harmony, src/exp,
                   src/baselines, src/common). Randomness flows through
                   common::Rng with an explicit seed.
  naked-new        No naked `new` / `delete`: ownership lives in containers and
                   smart pointers. The two observability leaky singletons are
                   exempted with a `// lint: allow-naked-new` marker.
  header-hygiene   Every header starts with `#pragma once`; headers never say
                   `using namespace` at file scope; no `#include "../..."`
                   parent-relative includes anywhere (include paths are rooted
                   at src/).
  read-only-analysis
                   src/obs/analysis is a pure interpretation layer: it derives
                   reports from trace/metrics snapshots and must never touch
                   the live observability state. Referencing the Tracer or
                   MetricsRegistry singletons (or their mutators) from
                   analysis code is banned, so running an analysis can never
                   perturb the measurement it analyzes.

clang-tidy (best effort): when a compile_commands.json is available (pass
--build-dir, or let the script probe build*/), and a clang-tidy binary exists,
the checks from .clang-tidy run over the project sources. Missing clang-tidy
degrades to a note, not a failure, so the script works in minimal containers.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose code must be deterministic (simulation + scheduling core).
DETERMINISTIC_DIRS = ("src/sim", "src/harmony", "src/exp", "src/baselines", "src/common")
# All directories subject to the generic rules.
SOURCE_DIRS = ("src", "tools", "tests")
SOURCE_EXTS = (".h", ".cpp")

ALLOW_NAKED_NEW = "lint: allow-naked-new"
ALLOW_NONDET = "lint: allow-nondeterminism"

NONDET_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() is banned; use common::Rng with an explicit seed"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "wall-clock seeding is banned; seeds must be explicit"),
    (re.compile(r"std::random_device"), "std::random_device breaks reproducibility; use a fixed seed"),
    (re.compile(r"std::mt19937(?:_64)?\s+\w+\s*;"), "unseeded std::mt19937 engine; construct with an explicit seed"),
]

# The analysis layer may use the TraceEvent/EventKind vocabulary but not the
# live singletons or anything that mutates them.
ANALYSIS_DIR = "src/obs/analysis"
ANALYSIS_BANNED = re.compile(r"Tracer\s*::|MetricsRegistry|set_enabled\s*\(")

NAKED_NEW = re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")
NAKED_DELETE = re.compile(r"(?<![\w.])delete(\s*\[\s*\])?\s+[A-Za-z_*(]")
PARENT_INCLUDE = re.compile(r'#\s*include\s+"\.\./')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals.

    Good enough for line-oriented lint rules; block comments are handled by
    the caller tracking state across lines.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def project_files():
    for top in SOURCE_DIRS:
        root = os.path.join(REPO, top)
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


class Findings:
    def __init__(self):
        self.items: list[str] = []

    def add(self, path: str, line_no: int, rule: str, message: str):
        rel = os.path.relpath(path, REPO)
        self.items.append(f"{rel}:{line_no}: [{rule}] {message}")


def lint_file(path: str, findings: Findings):
    rel = os.path.relpath(path, REPO)
    is_header = path.endswith(".h")
    in_deterministic = rel.startswith(DETERMINISTIC_DIRS) or rel.startswith("tools")
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    in_block_comment = False
    saw_pragma_once = False
    for line_no, raw in enumerate(raw_lines, start=1):
        # Track /* ... */ state so commented-out code is never flagged.
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2 :]

        code = strip_comments_and_strings(line)
        if not code.strip():
            if "#pragma once" in raw:
                saw_pragma_once = True
            continue

        if "#pragma once" in code:
            saw_pragma_once = True

        if PARENT_INCLUDE.search(code):
            findings.add(path, line_no, "header-hygiene",
                         'parent-relative #include "../..."; include paths are rooted at src/')

        if is_header and USING_NAMESPACE.match(code):
            findings.add(path, line_no, "header-hygiene",
                         "`using namespace` in a header leaks into every includer")

        if ALLOW_NAKED_NEW not in raw:
            if NAKED_NEW.search(code) or NAKED_DELETE.search(code):
                findings.add(path, line_no, "naked-new",
                             "naked new/delete; use containers or smart pointers"
                             f" (or mark the line `// {ALLOW_NAKED_NEW}`)")

        if in_deterministic and ALLOW_NONDET not in raw:
            for pattern, message in NONDET_PATTERNS:
                if pattern.search(code):
                    findings.add(path, line_no, "nondeterminism", message)

        if rel.startswith(ANALYSIS_DIR) and ANALYSIS_BANNED.search(code):
            findings.add(path, line_no, "read-only-analysis",
                         "analysis code must not touch the live Tracer/"
                         "MetricsRegistry; it only consumes snapshots")

    if is_header and not saw_pragma_once:
        findings.add(path, 1, "header-hygiene", "header is missing #pragma once")


def find_compile_commands(build_dir: str | None) -> str | None:
    candidates = [build_dir] if build_dir else ["build", "build-asan", "build-tsan"]
    for cand in candidates:
        if not cand:
            continue
        path = os.path.join(REPO, cand, "compile_commands.json") if not os.path.isabs(cand) \
            else os.path.join(cand, "compile_commands.json")
        if os.path.isfile(path):
            return path
    return None


def run_clang_tidy(compile_commands: str, jobs: int) -> int:
    """Runs clang-tidy over every project .cpp in the compilation database.

    Returns the number of files with findings.
    """
    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("lint: note: clang-tidy not found on PATH; skipping the clang-tidy pass")
        return 0
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    files = sorted({
        e["file"] for e in entries
        if e["file"].startswith(os.path.join(REPO, "src") + os.sep)
        or e["file"].startswith(os.path.join(REPO, "tools") + os.sep)
    })
    if not files:
        print("lint: note: no project sources in the compilation database")
        return 0
    build_path = os.path.dirname(compile_commands)
    print(f"lint: clang-tidy ({tidy}) over {len(files)} files ...")
    failed = 0
    # Batch to keep process count sane without pulling in run-clang-tidy.
    batch = max(1, len(files) // max(jobs, 1) + 1)
    procs = []
    for i in range(0, len(files), batch):
        procs.append(subprocess.Popen(
            [tidy, "-p", build_path, "--quiet", *files[i : i + batch]],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True))
    for proc in procs:
        out, _ = proc.communicate()
        if proc.returncode != 0 or "warning:" in out or "error:" in out:
            failed += 1
            sys.stdout.write(out)
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", help="build tree holding compile_commands.json")
    parser.add_argument("--no-clang-tidy", action="store_true",
                        help="run only the project rules")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    findings = Findings()
    count = 0
    for path in project_files():
        count += 1
        lint_file(path, findings)
    print(f"lint: project rules over {count} files: {len(findings.items)} finding(s)")
    for item in findings.items:
        print(f"  {item}")

    tidy_failures = 0
    if not args.no_clang_tidy:
        compile_commands = find_compile_commands(args.build_dir)
        if compile_commands:
            tidy_failures = run_clang_tidy(compile_commands, args.jobs)
        else:
            print("lint: note: no compile_commands.json found "
                  "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); "
                  "skipping the clang-tidy pass")

    if findings.items or tidy_failures:
        print("lint: FAILED")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
